#include "fleet/remote/worker.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <random>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "fleet/executor.hpp"
#include "fleet/remote/metrics_wire.hpp"
#include "fleet/remote/wire.hpp"
#include "metrics/metrics.hpp"
#include "util/socket.hpp"

namespace acf::fleet::remote {

namespace {

/// Writes a whole frame on the (blocking) coordinator socket.
bool send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const auto result = util::socket_write(fd, bytes.subspan(sent));
    if (result.status == util::IoStatus::kOk) {
      sent += result.bytes;
      continue;
    }
    if (result.status == util::IoStatus::kWouldBlock) continue;
    return false;
  }
  return true;
}

enum class WaitStatus : std::uint8_t { kFrame, kTimeout, kDead };

struct WaitResult {
  WaitStatus status = WaitStatus::kDead;
  std::vector<std::uint8_t> payload;
};

/// Blocks until one complete frame arrives, the timeout lapses, or the
/// connection dies (EOF, error, poisoned framing).
WaitResult wait_frame(int fd, FrameReader& reader, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (std::optional<std::vector<std::uint8_t>> payload = reader.next()) {
      return {WaitStatus::kFrame, std::move(*payload)};
    }
    if (reader.poisoned()) return {WaitStatus::kDead, {}};
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return {WaitStatus::kTimeout, {}};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    util::PollSet poll;
    const std::size_t slot =
        poll.add(fd, /*want_write=*/false);
    poll.wait(static_cast<int>(std::clamp<std::int64_t>(left.count(), 1, 1000)));
    const util::PollEntry& entry = poll.entry(slot);
    if (entry.error) return {WaitStatus::kDead, {}};
    if (!entry.readable) continue;
    std::uint8_t chunk[4096];
    const auto result = util::socket_read(fd, chunk);
    if (result.status == util::IoStatus::kOk) {
      if (!reader.feed(std::span<const std::uint8_t>(chunk, result.bytes))) {
        return {WaitStatus::kDead, {}};
      }
      continue;
    }
    if (result.status == util::IoStatus::kWouldBlock) continue;
    return {WaitStatus::kDead, {}};
  }
}

/// Feeds one granted batch into the trial pool.
class BatchSource final : public TrialSource {
 public:
  explicit BatchSource(std::vector<std::size_t> indices) : indices_(std::move(indices)) {}
  std::optional<std::size_t> next() override {
    const std::size_t at = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (at >= indices_.size()) return std::nullopt;
    return indices_[at];
  }

 private:
  std::vector<std::size_t> indices_;
  std::atomic<std::size_t> cursor_{0};
};

/// Streams each finished trial to the coordinator as a LeaseResult frame.
/// Pool threads and the heartbeat thread share the socket write mutex; a
/// failed send marks the connection dead and later pushes become no-ops —
/// the coordinator's lease expiry re-issues whatever never arrived.
class SocketSink final : public ResultSink {
 public:
  SocketSink(int fd, std::uint64_t lease_id, std::mutex& write_mutex,
             std::atomic<bool>& dead, std::atomic<std::uint64_t>& completed)
      : fd_(fd),
        lease_id_(lease_id),
        write_mutex_(write_mutex),
        dead_(dead),
        completed_(completed) {}

  void push(TrialOutcome outcome) override {
    LeaseResultMsg msg;
    msg.lease_id = lease_id_;
    msg.outcome = std::move(outcome);
    const std::vector<std::uint8_t> frame = frame_message(Message{std::move(msg)});
    completed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (dead_.load(std::memory_order_relaxed)) return;
    if (!send_all(fd_, frame)) dead_.store(true, std::memory_order_relaxed);
  }

 private:
  int fd_;
  std::uint64_t lease_id_;
  std::mutex& write_mutex_;
  std::atomic<bool>& dead_;
  std::atomic<std::uint64_t>& completed_;
};

enum class SessionEnd : std::uint8_t { kComplete, kPaused, kRejected, kCancelled, kLost };

}  // namespace

namespace {

// Worker identity for the coordinator's metrics map.  Randomness (not the
// campaign seed) is correct here: the id must differ between two worker
// processes launched identically on different hosts, and it never feeds
// back into trial execution, so determinism of results is untouched.
std::uint64_t make_instance_id() {
  std::random_device rd;
  std::uint64_t id = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  return id == 0 ? 1 : id;  // 0 is the wire's "not provided" sentinel
}

}  // namespace

Worker::Worker(const TrialPlan& plan, WorldFactory factory, WorkerConfig config)
    : plan_(plan),
      factory_(std::move(factory)),
      config_(std::move(config)),
      fingerprint_(campaign_fingerprint(plan_, config_.world_tag)),
      instance_id_(make_instance_id()) {}

WorkerResult Worker::run() {
  WorkerResult result;
  unsigned threads = config_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  resilience::ReconnectGate gate(config_.retry, config_.breaker, config_.give_up_after);

  const auto cancelled = [this] {
    return cancelled_.load(std::memory_order_relaxed);
  };

  // One connected session: handshake, then lease-request / run-batch cycles
  // until the coordinator says goodbye or the link dies.
  const auto session = [&](int fd) -> SessionEnd {
    FrameReader reader;
    std::mutex write_mutex;

    HelloMsg hello;
    hello.fingerprint = fingerprint_;
    hello.capacity = threads;
    hello.worker_name = config_.name;
    hello.instance_id = instance_id_;
    if (!send_all(fd, frame_message(Message{std::move(hello)}))) return SessionEnd::kLost;

    WaitResult greeting = wait_frame(fd, reader, config_.io_timeout);
    if (greeting.status != WaitStatus::kFrame) return SessionEnd::kLost;
    std::optional<Message> reply = decode(greeting.payload);
    if (!reply) return SessionEnd::kLost;
    if (const auto* rejected = std::get_if<RejectedMsg>(&*reply)) {
      result.message = rejected->reason;
      return SessionEnd::kRejected;
    }
    if (const auto* shutdown = std::get_if<ShutdownMsg>(&*reply)) {
      // Connected at the campaign's last instant: the coordinator greets
      // stragglers in its linger window with the Shutdown itself.
      return shutdown->reason == ShutdownReason::kCampaignComplete ? SessionEnd::kComplete
                                                                   : SessionEnd::kPaused;
    }
    const auto* welcome = std::get_if<WelcomeMsg>(&*reply);
    if (!welcome) return SessionEnd::kLost;
    if (welcome->fingerprint != fingerprint_ || welcome->trial_count != plan_.trial_count()) {
      // A coordinator that welcomes us into a different campaign is not a
      // transient fault; retrying would re-run the same mismatch forever.
      result.message = "welcome does not match this worker's campaign";
      return SessionEnd::kRejected;
    }
    gate.note_success();

    for (;;) {
      if (cancelled()) return SessionEnd::kCancelled;
      {
        LeaseRequestMsg request;
        request.capacity = threads;
        std::lock_guard<std::mutex> lock(write_mutex);
        if (!send_all(fd, frame_message(Message{request}))) return SessionEnd::kLost;
      }

      // Wait for a grant (or the campaign's end), keeping the link warm
      // with idle heartbeats while other workers hold all the leases.
      for (;;) {
        WaitResult wait = wait_frame(fd, reader, config_.heartbeat_period);
        if (wait.status == WaitStatus::kDead) return SessionEnd::kLost;
        if (wait.status == WaitStatus::kTimeout) {
          if (cancelled()) return SessionEnd::kCancelled;
          std::lock_guard<std::mutex> lock(write_mutex);
          if (!send_all(fd, frame_message(Message{HeartbeatMsg{}}))) return SessionEnd::kLost;
          continue;
        }
        std::optional<Message> message = decode(wait.payload);
        if (!message) return SessionEnd::kLost;
        if (std::holds_alternative<UnknownMsg>(*message)) continue;  // tolerate
        if (const auto* shutdown = std::get_if<ShutdownMsg>(&*message)) {
          return shutdown->reason == ShutdownReason::kCampaignComplete
                     ? SessionEnd::kComplete
                     : SessionEnd::kPaused;
        }
        const auto* grant = std::get_if<LeaseGrantMsg>(&*message);
        if (!grant) return SessionEnd::kLost;  // coordinator spoke worker-talk

        std::vector<std::size_t> indices;
        indices.reserve(grant->trials.size());
        for (const std::uint64_t trial : grant->trials) {
          if (trial >= plan_.trial_count()) return SessionEnd::kLost;
          indices.push_back(static_cast<std::size_t>(trial));
        }

        std::atomic<bool> link_dead{false};
        std::atomic<std::uint64_t> completed{0};
        BatchSource source(std::move(indices));
        SocketSink sink(fd, grant->lease_id, write_mutex, link_dead, completed);

        // Heartbeat side-thread: a single long trial must not look like a
        // dead worker to the coordinator's lease-expiry detector.
        std::atomic<bool> batch_done{false};
        std::mutex hb_mutex;
        std::condition_variable hb_cv;
        const auto send_heartbeat = [&] {
          HeartbeatMsg beat;
          beat.lease_id = grant->lease_id;
          beat.completed = completed.load(std::memory_order_relaxed);
          if (config_.registry) {
            // Full running totals every beat: idempotent under reconnect,
            // because the coordinator replaces this worker's block instead
            // of adding to it.
            beat.metrics = to_wire(config_.registry->snapshot());
          }
          const std::vector<std::uint8_t> frame = frame_message(Message{std::move(beat)});
          std::lock_guard<std::mutex> lock(write_mutex);
          if (link_dead.load(std::memory_order_relaxed)) return;
          if (!send_all(fd, frame)) link_dead.store(true, std::memory_order_relaxed);
        };
        std::thread heartbeat([&] {
          std::unique_lock<std::mutex> hb_lock(hb_mutex);
          while (!hb_cv.wait_for(hb_lock, config_.heartbeat_period,
                                 [&] { return batch_done.load(std::memory_order_relaxed); })) {
            send_heartbeat();
          }
        });

        TrialPoolConfig pool;
        pool.threads = static_cast<unsigned>(
            std::min<std::size_t>(threads, grant->trials.size()));
        if (pool.threads == 0) pool.threads = 1;
        pool.registry = config_.registry;
        run_trial_pool(plan_, factory_, source, sink, pool, &cancelled_);

        {
          std::lock_guard<std::mutex> hb_lock(hb_mutex);
          batch_done.store(true, std::memory_order_relaxed);
        }
        hb_cv.notify_all();
        heartbeat.join();
        // Final totals for the batch, after every pool thread has joined:
        // the coordinator's merged view catches up even when the batch
        // finished between two periodic beats.
        if (config_.registry) send_heartbeat();

        result.trials_run += static_cast<std::size_t>(completed.load());
        ++result.leases_served;
        if (link_dead.load(std::memory_order_relaxed)) return SessionEnd::kLost;
        if (cancelled()) return SessionEnd::kCancelled;
        break;  // batch delivered; ask for the next one
      }
    }
  };

  for (;;) {
    if (cancelled()) {
      result.exit = WorkerExit::kCancelled;
      break;
    }
    const std::optional<std::chrono::milliseconds> delay = gate.next_delay();
    if (!delay) {
      result.exit = WorkerExit::kGaveUp;
      result.message = "reconnect gate exhausted";
      break;
    }
    // Sleep in small slices so cancel() stays responsive through long
    // breaker-open windows.
    auto remaining = *delay;
    while (remaining.count() > 0 && !cancelled()) {
      const auto step = std::min(remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(step);
      remaining -= step;
    }
    if (cancelled()) {
      result.exit = WorkerExit::kCancelled;
      break;
    }

    std::optional<util::Fd> fd = util::tcp_connect(config_.host, config_.port);
    if (!fd) {
      gate.note_failure();
      continue;
    }
    const SessionEnd end = session(fd->get());
    if (end == SessionEnd::kComplete) {
      result.exit = WorkerExit::kCampaignComplete;
      break;
    }
    if (end == SessionEnd::kPaused) {
      result.exit = WorkerExit::kCoordinatorPaused;
      break;
    }
    if (end == SessionEnd::kRejected) {
      result.exit = WorkerExit::kRejected;
      break;
    }
    if (end == SessionEnd::kCancelled) {
      result.exit = WorkerExit::kCancelled;
      break;
    }
    gate.note_failure();  // SessionEnd::kLost: back through the gate
  }

  result.reconnect = gate.stats();
  return result;
}

}  // namespace acf::fleet::remote
