#include "fleet/remote/coordinator.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "fleet/remote/checkpoint.hpp"
#include "fleet/remote/metrics_wire.hpp"
#include "metrics/snapshot.hpp"

namespace acf::fleet::remote {

namespace {

constexpr std::size_t kReadChunk = 4096;

std::size_t clamp_capacity(std::uint32_t capacity) {
  if (capacity == 0) return 1;
  return std::min<std::size_t>(capacity, kMaxLeaseTrials);
}

}  // namespace

/// One worker socket: framing state, pending output, handshake identity.
struct Coordinator::Connection {
  util::Fd fd;
  FrameReader reader;
  std::vector<std::uint8_t> out;  // frames not yet accepted by the kernel
  std::size_t out_sent = 0;
  std::uint64_t session = 0;  // 0 until the handshake completed
  std::size_t capacity = 1;
  std::string worker_name;   // advertised in Hello; diagnostics only
  std::uint64_t instance_id = 0;  // from Hello; keys the metrics block
  bool handshaken = false;
  bool pending_request = false;  // asked for work while none was available
  bool closing = false;          // drain `out`, then drop (Rejected)
  bool half_closed = false;      // FIN sent; read side drains until EOF
  bool dead = false;
  WallClock::time_point connected_at{};
};

Coordinator::Coordinator(const TrialPlan& plan, CoordinatorConfig config)
    : plan_(plan),
      config_(std::move(config)),
      fingerprint_(campaign_fingerprint(plan, config_.world_tag)),
      table_(plan.trial_count()) {
  auto listener = util::TcpListener::listen_loopback(config_.port);
  if (!listener) throw std::runtime_error("coordinator: cannot bind loopback listener");
  listener_ = std::move(*listener);

  // Every slot starts as its skipped-state spec so an interrupted campaign
  // still returns a complete, index-ordered vector.
  outcomes_.resize(plan_.trial_count());
  for (std::size_t i = 0; i < outcomes_.size(); ++i) outcomes_[i].spec = plan_.spec(i);

  load_checkpoint();
}

Coordinator::~Coordinator() = default;

void Coordinator::load_checkpoint() {
  if (config_.checkpoint_path.empty()) return;
  if (!std::filesystem::exists(config_.checkpoint_path)) return;
  std::optional<FleetCheckpoint> checkpoint = FleetCheckpoint::load(config_.checkpoint_path);
  if (!checkpoint) {
    throw std::runtime_error("coordinator: corrupt campaign checkpoint: " +
                             config_.checkpoint_path);
  }
  if (checkpoint->fingerprint != fingerprint_ ||
      checkpoint->trial_count != plan_.trial_count()) {
    throw std::runtime_error("coordinator: checkpoint belongs to a different campaign: " +
                             config_.checkpoint_path);
  }
  for (auto& [index, outcome] : checkpoint->completed) {
    table_.mark_done(index);
    outcomes_[index] = std::move(outcome);
    // The plan, not the disk, is authoritative for the spec.
    outcomes_[index].spec = plan_.spec(index);
  }
  // prioritise() pushes to the queue front, so feed ascending indices in
  // reverse to leave the front ascending — resume re-issues them in order.
  for (auto it = checkpoint->leased.rbegin(); it != checkpoint->leased.rend(); ++it) {
    table_.prioritise(*it);
  }
  stats_.resumed_done = checkpoint->completed.size();
  stats_.resumed_leased = checkpoint->leased.size();
}

void Coordinator::save_checkpoint(bool force) {
  if (config_.checkpoint_path.empty()) return;
  const auto now = WallClock::now();
  if (!force && (!dirty_ || now - last_checkpoint_ < config_.checkpoint_period)) return;
  FleetCheckpoint checkpoint;
  checkpoint.fingerprint = fingerprint_;
  checkpoint.trial_count = plan_.trial_count();
  checkpoint.completed.reserve(table_.done_count());
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    if (table_.state(i) == TrialState::kDone) checkpoint.completed.emplace_back(i, outcomes_[i]);
  }
  checkpoint.leased = table_.leased_indices();
  if (checkpoint.save(config_.checkpoint_path)) {
    dirty_ = false;
    last_checkpoint_ = now;
  }
}

void Coordinator::send_message(Connection& conn, const Message& message) {
  const std::vector<std::uint8_t> frame = frame_message(message);
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  flush(conn);
}

void Coordinator::flush(Connection& conn) {
  while (conn.out_sent < conn.out.size()) {
    const auto result = util::socket_write(
        conn.fd.get(), std::span<const std::uint8_t>(conn.out).subspan(conn.out_sent));
    if (result.status == util::IoStatus::kOk) {
      conn.out_sent += result.bytes;
      continue;
    }
    if (result.status == util::IoStatus::kWouldBlock) return;
    drop(conn, /*count_disconnect=*/conn.handshaken);
    return;
  }
  conn.out.clear();
  conn.out_sent = 0;
  if (conn.closing) conn.dead = true;
}

void Coordinator::drop(Connection& conn, bool count_disconnect) {
  if (conn.dead) return;
  conn.dead = true;
  if (count_disconnect) ++stats_.workers_disconnected;
  if (conn.session != 0) {
    const std::size_t released = table_.release_worker(conn.session);
    if (released > 0) {
      dirty_ = true;
      pump_pending_grants();
    }
  }
}

void Coordinator::grant_to(Connection& conn) {
  const std::size_t batch = std::min(config_.max_batch, conn.capacity);
  std::optional<GrantedLease> lease =
      table_.grant(conn.session, std::max<std::size_t>(batch, 1), WallClock::now(),
                   config_.lease_ttl);
  if (!lease) {
    conn.pending_request = true;
    return;
  }
  conn.pending_request = false;
  LeaseGrantMsg grant;
  grant.lease_id = lease->lease_id;
  grant.deadline_ms = static_cast<std::uint32_t>(
      std::min<std::int64_t>(config_.lease_ttl.count(), UINT32_MAX));
  grant.trials.reserve(lease->trials.size());
  for (const std::size_t index : lease->trials) {
    grant.trials.push_back(static_cast<std::uint64_t>(index));
  }
  send_message(conn, Message{std::move(grant)});
  dirty_ = true;  // the leased set the checkpoint records just changed
}

void Coordinator::pump_pending_grants() {
  for (auto& conn : connections_) {
    if (!table_.work_available()) return;
    if (conn->dead || conn->closing || !conn->pending_request) continue;
    grant_to(*conn);
  }
}

void Coordinator::handle_payload(Connection& conn, std::span<const std::uint8_t> payload) {
  std::optional<Message> message = decode(payload);
  if (!message) {
    ++stats_.protocol_errors;
    drop(conn, /*count_disconnect=*/conn.handshaken);
    return;
  }

  if (const auto* hello = std::get_if<HelloMsg>(&*message)) {
    if (conn.handshaken) {
      ++stats_.protocol_errors;
      drop(conn, /*count_disconnect=*/true);
      return;
    }
    if (hello->protocol_version != kProtocolVersion) {
      ++stats_.workers_rejected;
      send_message(conn, Message{RejectedMsg{"protocol version mismatch"}});
      conn.closing = true;
      flush(conn);
      return;
    }
    if (hello->fingerprint != fingerprint_) {
      ++stats_.workers_rejected;
      send_message(conn, Message{RejectedMsg{"campaign fingerprint mismatch"}});
      conn.closing = true;
      flush(conn);
      return;
    }
    conn.session = next_session_++;
    conn.capacity = clamp_capacity(hello->capacity);
    conn.worker_name = hello->worker_name;
    // A raw client that sends no instance id gets its session as the key:
    // unique, so it never clobbers anyone, at the cost of double-counted
    // totals if that client reconnects and replays its history.
    conn.instance_id = hello->instance_id != 0 ? hello->instance_id : conn.session;
    conn.handshaken = true;
    ++stats_.workers_connected;
    WelcomeMsg welcome;
    welcome.fingerprint = fingerprint_;
    welcome.trial_count = plan_.trial_count();
    welcome.session = conn.session;
    send_message(conn, Message{welcome});
    return;
  }

  if (std::holds_alternative<UnknownMsg>(*message)) {
    ++stats_.unknown_messages;  // forward compatibility: skip, keep going
    return;
  }

  if (!conn.handshaken) {
    ++stats_.protocol_errors;
    drop(conn, /*count_disconnect=*/false);
    return;
  }

  if (const auto* request = std::get_if<LeaseRequestMsg>(&*message)) {
    conn.capacity = clamp_capacity(request->capacity);
    grant_to(conn);
    return;
  }

  if (const auto* heartbeat = std::get_if<HeartbeatMsg>(&*message)) {
    if (heartbeat->lease_id != 0) table_.renew(heartbeat->lease_id, WallClock::now());
    note_worker_metrics(conn, *heartbeat);
    return;
  }

  if (auto* result = std::get_if<LeaseResultMsg>(&*message)) {
    const std::uint64_t wire_index = result->outcome.spec.trial_index;
    if (wire_index >= plan_.trial_count()) {
      ++stats_.forged_results;
      drop(conn, /*count_disconnect=*/true);
      return;
    }
    const std::size_t index = static_cast<std::size_t>(wire_index);
    const TrialSpec expected = plan_.spec(index);
    const TrialSpec& got = result->outcome.spec;
    if (got.arm != expected.arm || got.replica != expected.replica ||
        got.seed != expected.seed || got.sim_budget != expected.sim_budget) {
      ++stats_.forged_results;
      drop(conn, /*count_disconnect=*/true);
      return;
    }
    table_.renew(result->lease_id, WallClock::now());
    const CompletionResult completion = table_.complete(result->lease_id, index);
    if (completion == CompletionResult::kAccepted) {
      outcomes_[index] = std::move(result->outcome);
      dirty_ = true;
      if (progress_) progress_->record(outcomes_[index]);
      if (config_.snapshot_writer && config_.snapshot_interval > 0 &&
          ++results_since_snapshot_ >= config_.snapshot_interval) {
        results_since_snapshot_ = 0;
        write_snapshot_line();
      }
      if (on_trial_done_) on_trial_done_(table_.done_count());
    } else if (completion == CompletionResult::kDuplicate) {
      // A stolen lease finished twice; same seed, identical bytes — first
      // arrival already owns the slot.
      if (progress_) progress_->record_duplicate();
    }
    return;
  }

  // Welcome / LeaseGrant / Shutdown / Rejected have no business arriving
  // from a worker.
  ++stats_.protocol_errors;
  drop(conn, /*count_disconnect=*/true);
}

void Coordinator::note_worker_metrics(const Connection& conn, const HeartbeatMsg& heartbeat) {
  if (!heartbeat.metrics || conn.instance_id == 0) return;
  // Full totals, replace-on-update keyed by the worker's instance id.  A
  // reconnecting worker (same id, fresh session) overwrites its previous
  // block — its registry survived the reconnect, so the new totals already
  // include the old.  Two workers that advertise the same *name* carry
  // distinct ids and keep separate blocks.
  worker_metrics_[conn.instance_id] = from_wire(*heartbeat.metrics);
}

metrics::RegistrySnapshot Coordinator::merged_metrics() {
  std::vector<metrics::RegistrySnapshot> parts;
  parts.reserve(1 + worker_metrics_.size());
  if (config_.registry) parts.push_back(config_.registry->snapshot());
  for (const auto& [instance, snap] : worker_metrics_) parts.push_back(snap);
  return metrics::merge_snapshots(parts);
}

void Coordinator::write_snapshot_line() {
  metrics::RegistrySnapshot merged = merged_metrics();
  double sim_seconds = 0.0;
  for (const metrics::TimerSnap& timer : merged.timers) {
    if (timer.name == "fleet.trial.sim_seconds") {
      sim_seconds = timer.sum;
      break;
    }
  }
  config_.snapshot_writer->write(merged, sim_seconds);
}

std::vector<TrialOutcome> Coordinator::serve(ProgressReporter* progress) {
  progress_ = progress;
  if (progress_) progress_->begin(plan_.trial_count(), table_.done_count());
  auto last_progress = WallClock::now();

  util::PollSet poll;
  const int poll_ms = static_cast<int>(std::max<std::int64_t>(config_.poll_period.count(), 1));
  ShutdownReason shutdown_reason = ShutdownReason::kCampaignComplete;

  while (!table_.all_done()) {
    if (cancelled_.load(std::memory_order_relaxed)) {
      shutdown_reason = ShutdownReason::kCoordinatorPausing;
      break;
    }
    if (config_.stop_after_completed > 0 &&
        table_.done_count() >= config_.stop_after_completed) {
      shutdown_reason = ShutdownReason::kCoordinatorPausing;
      break;
    }

    poll.clear();
    const std::size_t listener_slot = poll.add(listener_.fd(), /*want_write=*/false);
    std::vector<std::pair<std::size_t, Connection*>> polled;
    polled.reserve(connections_.size());
    for (auto& conn : connections_) {
      if (conn->dead) continue;
      polled.emplace_back(poll.add(conn->fd.get(), conn->out_sent < conn->out.size()),
                          conn.get());
    }
    poll.wait(poll_ms);

    if (poll.entry(listener_slot).readable) {
      while (std::optional<util::Fd> accepted = listener_.accept()) {
        auto conn = std::make_unique<Connection>();
        conn->fd = std::move(*accepted);
        conn->connected_at = WallClock::now();
        connections_.push_back(std::move(conn));
      }
    }

    for (auto& [slot, conn] : polled) {
      const util::PollEntry& entry = poll.entry(slot);
      if (entry.error) {
        drop(*conn, /*count_disconnect=*/conn->handshaken);
        continue;
      }
      if (entry.writable) flush(*conn);
      if (conn->dead || !entry.readable) continue;
      std::uint8_t chunk[kReadChunk];
      while (!conn->dead) {
        const auto result = util::socket_read(conn->fd.get(), chunk);
        if (result.status == util::IoStatus::kOk) {
          if (!conn->reader.feed(std::span<const std::uint8_t>(chunk, result.bytes))) {
            ++stats_.protocol_errors;
            drop(*conn, /*count_disconnect=*/conn->handshaken);
          }
          continue;
        }
        if (result.status == util::IoStatus::kWouldBlock) break;
        // Orderly close or hard error: either way the worker is gone.
        drop(*conn, /*count_disconnect=*/conn->handshaken);
      }
      while (!conn->dead && !conn->closing) {
        std::optional<std::vector<std::uint8_t>> payload = conn->reader.next();
        if (!payload) {
          if (conn->reader.poisoned()) {
            ++stats_.protocol_errors;
            drop(*conn, /*count_disconnect=*/conn->handshaken);
          }
          break;
        }
        handle_payload(*conn, *payload);
      }
    }

    const auto now = WallClock::now();
    const std::size_t expired = table_.expire(now);
    if (expired > 0) {
      dirty_ = true;
      pump_pending_grants();
    }
    for (auto& conn : connections_) {
      if (!conn->dead && !conn->handshaken &&
          now - conn->connected_at > config_.handshake_timeout) {
        drop(*conn, /*count_disconnect=*/false);
      }
    }
    std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
      return conn->dead;
    });

    stats_.leases = table_.stats();
    if (progress_) {
      progress_->set_lease_counters(table_.outstanding(), stats_.leases.trials_stolen,
                                    stats_.leases.leases_expired);
      if (config_.progress_period.count() > 0 &&
          now - last_progress >= config_.progress_period) {
        std::fprintf(stderr, "%s\n", progress_->line().c_str());
        last_progress = now;
      }
    }
    save_checkpoint(/*force=*/false);
  }

  // Orderly goodbye: every live worker hears why the stream is ending, so a
  // pausing coordinator does not look like a crash to the reconnect gate.
  for (auto& conn : connections_) {
    if (conn->dead || conn->closing) continue;
    send_message(*conn, Message{ShutdownMsg{shutdown_reason}});
  }

  // Linger instead of closing outright.  Each socket is half-closed once its
  // Shutdown frame is out — the FIN says "no more grants" while the read
  // side stays open to drain whatever the worker was mid-sending.  A full
  // close here races the worker's in-flight LeaseRequest or heartbeat: the
  // kernel answers a write-after-close with an RST that destroys the unread
  // Shutdown in the worker's receive buffer, stranding the worker in
  // reconnect against a finished campaign.  Stragglers that connect inside
  // the window are greeted with the same Shutdown as closure.  Results read
  // here are discarded — every result that mattered arrived before all_done
  // flipped, and a pausing coordinator's checkpoint re-issues the rest —
  // but heartbeats still land: a worker's last batch ends with a final
  // full-totals heartbeat that may race the all_done flip, and the merged
  // metrics view must not miss it.
  const auto linger_deadline = WallClock::now() + std::chrono::milliseconds(500);
  while (WallClock::now() < linger_deadline) {
    poll.clear();
    const std::size_t accept_slot = poll.add(listener_.fd(), /*want_write=*/false);
    std::vector<std::pair<std::size_t, Connection*>> draining;
    for (auto& conn : connections_) {
      if (conn->dead) continue;
      if (conn->out_sent >= conn->out.size() && !conn->half_closed) {
        ::shutdown(conn->fd.get(), SHUT_WR);
        conn->half_closed = true;
      }
      draining.emplace_back(poll.add(conn->fd.get(), conn->out_sent < conn->out.size()),
                            conn.get());
    }
    if (draining.empty()) break;
    poll.wait(10);
    if (poll.entry(accept_slot).readable) {
      while (std::optional<util::Fd> accepted = listener_.accept()) {
        auto conn = std::make_unique<Connection>();
        conn->fd = std::move(*accepted);
        conn->connected_at = WallClock::now();
        send_message(*conn, Message{ShutdownMsg{shutdown_reason}});
        connections_.push_back(std::move(conn));  // half-closed next pass
      }
    }
    for (auto& [slot, conn] : draining) {
      const util::PollEntry& entry = poll.entry(slot);
      if (entry.error) {
        conn->dead = true;
        continue;
      }
      if (entry.writable) flush(*conn);
      if (conn->dead || !entry.readable) continue;
      std::uint8_t chunk[kReadChunk];
      while (!conn->dead) {
        const auto result = util::socket_read(conn->fd.get(), chunk);
        if (result.status == util::IoStatus::kOk) {
          // Keep framing so the worker's final heartbeat parses; poisoned
          // framing just ends the drain for this socket.
          if (!conn->reader.feed(std::span<const std::uint8_t>(chunk, result.bytes))) {
            conn->dead = true;
          }
          continue;
        }
        if (result.status == util::IoStatus::kWouldBlock) break;
        conn->dead = true;  // EOF: the worker saw the Shutdown and hung up
      }
      while (!conn->dead) {
        std::optional<std::vector<std::uint8_t>> payload = conn->reader.next();
        if (!payload) break;
        std::optional<Message> message = decode(*payload);
        if (!message) continue;
        if (const auto* heartbeat = std::get_if<HeartbeatMsg>(&*message)) {
          note_worker_metrics(*conn, *heartbeat);
        }
      }
    }
  }
  connections_.clear();
  // Stop listening: a worker reconnecting after this point meets a refused
  // connection (bounded backoff, then give-up) rather than a listener whose
  // accept queue will never drain again.
  listener_ = util::TcpListener();

  stats_.leases = table_.stats();
  save_checkpoint(/*force=*/dirty_);
  // Final merged snapshot after the linger drain, so the last heartbeat's
  // totals are in: this line is the determinism-contract artifact.
  if (config_.snapshot_writer) write_snapshot_line();
  if (progress_ && config_.progress_period.count() > 0) {
    std::fprintf(stderr, "%s\n", progress_->line().c_str());
  }
  progress_ = nullptr;
  return outcomes_;
}

}  // namespace acf::fleet::remote
