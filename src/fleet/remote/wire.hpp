// Fleet wire protocol: the length-prefixed binary frames workers and the
// coordinator exchange.  Every frame is a u32 little-endian payload length
// followed by the payload; every payload starts with a one-byte message
// type.  The decoder follows the repo's hardened byte-reader discipline
// (see DESIGN.md §13): a bounds-checked cursor that can only fail closed,
// declared counts validated against the bytes actually present, strict
// full-consumption so decode∘encode is the identity on everything accepted,
// and unknown message types preserved verbatim rather than rejected — a
// v2 coordinator can speak to a v1 worker without killing the campaign.
//
// This surface is fuzzed: the `fleet_wire` self-fuzz target hammers
// FrameReader + decode with the same invariants as the other nine parsers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "fleet/trial.hpp"
#include "fleet/trial_plan.hpp"

namespace acf::fleet::remote {

constexpr std::uint32_t kProtocolVersion = 1;
/// Hard ceiling on one frame's payload; a length prefix above it poisons
/// the stream before a single byte of the payload is buffered.
constexpr std::size_t kMaxFramePayload = 1u << 20;
constexpr std::size_t kMaxNameBytes = 256;
constexpr std::size_t kMaxStringBytes = 1u << 16;
constexpr std::size_t kMaxLeaseTrials = 4096;
/// Bounds on the metrics block a heartbeat may carry: instruments per
/// family, CKMS samples per timer.  Honest workers sit far below both.
constexpr std::size_t kMaxMetricsEntries = 512;
constexpr std::size_t kMaxTimerSamples = 4096;

enum class MsgType : std::uint8_t {
  kHello = 1,         // worker -> coordinator: version, fingerprint, capacity
  kWelcome = 2,       // coordinator -> worker: campaign accepted
  kLeaseRequest = 3,  // worker -> coordinator: idle, wants a batch
  kLeaseGrant = 4,    // coordinator -> worker: lease id, deadline, trials
  kLeaseResult = 5,   // worker -> coordinator: one finished trial
  kHeartbeat = 6,     // worker -> coordinator: liveness + batch progress
  kShutdown = 7,      // coordinator -> worker: campaign over, disconnect
  kRejected = 8,      // coordinator -> worker: handshake refused
};

struct HelloMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint64_t fingerprint = 0;
  std::uint32_t capacity = 1;  // worker threads it will run trials on
  std::string worker_name;
  /// Unique per worker process, stable across reconnects.  Keys the
  /// coordinator's per-worker metrics block: a reconnect (same id) replaces
  /// its previous totals, while two workers that advertise the same name
  /// (distinct ids) keep separate blocks.  0 means "not provided"; the
  /// coordinator falls back to the session id, which degrades a reconnect
  /// to per-session blocks (double counts totals) but never loses a worker.
  std::uint64_t instance_id = 0;
};

struct WelcomeMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint64_t fingerprint = 0;
  std::uint64_t trial_count = 0;
  std::uint64_t session = 0;  // coordinator-assigned worker session id
};

struct LeaseRequestMsg {
  std::uint32_t capacity = 1;
};

struct LeaseGrantMsg {
  std::uint64_t lease_id = 0;
  /// Informational time budget; the authoritative failure detector is the
  /// coordinator's activity clock (results and heartbeats renew it).
  std::uint32_t deadline_ms = 0;
  std::vector<std::uint64_t> trials;
};

struct LeaseResultMsg {
  std::uint64_t lease_id = 0;
  TrialOutcome outcome;
};

// --- heartbeat metrics block -----------------------------------------------
// A compact registry snapshot piggybacked on the liveness heartbeat: the
// worker ships its FULL running totals every time (idempotent under
// reconnect — the coordinator replaces, never adds), and timers carry their
// raw CKMS samples so the coordinator's merged quantiles keep the ε bound.
// Wall-driven meters never cross the wire (rates do not add across clocks).
// Mirrors metrics::RegistrySnapshot without depending on the metrics
// headers, so this file stays a standalone wire surface for the fuzzer;
// converters live in fleet/remote/metrics_wire.hpp.

struct WireCounter {
  std::string name;
  std::uint64_t value = 0;
};

struct WireGauge {
  std::string name;
  std::int64_t value = 0;
};

/// One CKMS sample: (value, g, delta) exactly as ckms.hpp defines it.
struct WireTimerSample {
  double value = 0.0;
  std::uint64_t g = 0;
  std::uint64_t delta = 0;
};

struct WireTimer {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<WireTimerSample> samples;
};

struct MetricsUpdate {
  std::vector<WireCounter> counters;
  std::vector<WireGauge> gauges;
  std::vector<WireTimer> timers;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && timers.empty();
  }
};

struct HeartbeatMsg {
  std::uint64_t lease_id = 0;  // 0 when idle
  std::uint64_t completed = 0;
  /// Optional full-totals metrics block (flag byte on the wire; absent and
  /// engaged-but-empty encode differently and round-trip exactly).
  std::optional<MetricsUpdate> metrics;
};

enum class ShutdownReason : std::uint8_t { kCampaignComplete = 0, kCoordinatorPausing = 1 };

struct ShutdownMsg {
  ShutdownReason reason = ShutdownReason::kCampaignComplete;
};

struct RejectedMsg {
  std::string reason;
};

/// A syntactically valid frame whose type this build does not know.  Kept
/// verbatim so tolerant peers can skip it and decode∘encode stays identity.
struct UnknownMsg {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
};

using Message = std::variant<HelloMsg, WelcomeMsg, LeaseRequestMsg, LeaseGrantMsg,
                             LeaseResultMsg, HeartbeatMsg, ShutdownMsg, RejectedMsg,
                             UnknownMsg>;

/// Encodes the payload (type byte + body, no length prefix).
std::vector<std::uint8_t> encode(const Message& message);

/// Strict decode of one payload: bounds-checked, counts validated, whole
/// payload consumed.  nullopt on anything malformed; for every accepted
/// payload, encode(*decode(p)) == p.
std::optional<Message> decode(std::span<const std::uint8_t> payload);

/// Length-prefixed frame ready for the socket.
std::vector<std::uint8_t> frame_message(const Message& message);

/// Reassembles frames from an arbitrary chunked byte stream.  A declared
/// length of zero (no type byte) or above `max_payload` poisons the reader:
/// the connection is handed garbage and must be dropped, never resynced.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends stream bytes; returns false (and ignores the bytes) once
  /// poisoned.  Buffered memory stays proportional to one frame.
  bool feed(std::span<const std::uint8_t> bytes);

  /// Pops the next complete payload, if one is buffered.
  std::optional<std::vector<std::uint8_t>> next();

  bool poisoned() const noexcept { return poisoned_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already handed out
  bool poisoned_ = false;
};

/// Identity of a campaign: workers and coordinator must agree on the exact
/// trial matrix before any lease moves, and a checkpoint must refuse to
/// resume a different campaign.  FNV-1a over the world tag, arm labels,
/// replicas, base seed and simulated budget.
std::uint64_t campaign_fingerprint(const TrialPlan& plan, std::string_view world_tag);

// --- hardened byte cursor (shared with the checkpoint reader and the ---
// --- fleet_wire fuzz target)                                          ---

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool done() const noexcept { return ok_ && remaining() == 0; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();  // IEEE bit pattern via u64: exact, canonical
  /// Length-prefixed string (u32 + bytes), capped at `max_bytes`.
  std::string str(std::size_t max_bytes);

 private:
  bool take(std::size_t n) noexcept;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);

  std::vector<std::uint8_t> take() { return std::move(out_); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

}  // namespace acf::fleet::remote
