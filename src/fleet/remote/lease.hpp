// LeaseTable: the coordinator's ownership ledger over the trial index
// space.  Every trial is Unissued, Leased (owned by one worker under a
// deadline) or Done; leases are granted in trial-index order, renewed by
// any activity from their worker, and — the crash-tolerance core — expired
// leases hand their unfinished trials straight back to the issue queue so
// the next hungry worker steals them.  Completions are deduplicated by
// trial index (equivalently (arm, replica, seed): the spec is a pure
// function of the index) so a slow worker finishing a stolen batch cannot
// double-count a trial.
//
// The table is plain single-threaded state; the coordinator's poll loop is
// its only caller.  Wall-clock enters only through the `now` arguments —
// deadlines never touch trial outcomes, so campaign output stays a pure
// function of the plan.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

namespace acf::fleet::remote {

using WallClock = std::chrono::steady_clock;

enum class TrialState : std::uint8_t { kUnissued, kLeased, kDone };

struct GrantedLease {
  std::uint64_t lease_id = 0;
  std::vector<std::size_t> trials;
};

enum class CompletionResult : std::uint8_t {
  kAccepted,   // first completion of this trial
  kDuplicate,  // trial already Done (stolen lease finished twice)
  kBadIndex,   // index outside the plan
};

struct LeaseStats {
  std::uint64_t leases_issued = 0;
  std::uint64_t leases_expired = 0;    // reclaimed by the failure detector
  std::uint64_t leases_released = 0;   // reclaimed on worker disconnect
  std::uint64_t trials_stolen = 0;     // re-issued after a reclaim
  std::uint64_t duplicate_completions = 0;
};

class LeaseTable {
 public:
  explicit LeaseTable(std::size_t trial_count);

  /// Marks a trial Done without an owning lease (checkpoint restore).
  void mark_done(std::size_t index);

  /// Pushes a trial to the front of the issue queue (checkpoint restore of
  /// in-flight leases: these are re-issued first, before untouched trials).
  void prioritise(std::size_t index);

  /// Grants up to `max_trials` unissued trials to `worker`.  nullopt when
  /// nothing is available (all remaining trials are leased or done).
  std::optional<GrantedLease> grant(std::uint64_t worker, std::size_t max_trials,
                                    WallClock::time_point now,
                                    std::chrono::milliseconds ttl);

  /// Folds one completion in.  `lease_id` may be stale or unknown — the
  /// trial index is authoritative; the lease, when alive, just sheds the
  /// trial from its remaining set.
  CompletionResult complete(std::uint64_t lease_id, std::size_t index);

  /// Renews the deadline of a live lease (heartbeat / result activity).
  void renew(std::uint64_t lease_id, WallClock::time_point now);

  /// Reclaims every lease past its deadline; unfinished trials return to
  /// the front of the issue queue.  Returns the number of leases expired.
  std::size_t expire(WallClock::time_point now);

  /// Reclaims every lease owned by `worker` (disconnect / crash detected
  /// at the socket).  Returns the number of leases released.
  std::size_t release_worker(std::uint64_t worker);

  bool all_done() const noexcept { return done_ == states_.size(); }
  std::size_t done_count() const noexcept { return done_; }
  std::size_t trial_count() const noexcept { return states_.size(); }
  std::size_t outstanding() const noexcept { return leases_.size(); }
  bool work_available() const noexcept { return !queue_.empty(); }
  TrialState state(std::size_t index) const { return states_.at(index); }
  const LeaseStats& stats() const noexcept { return stats_; }

  /// Trial indices currently under a live lease, ascending (checkpointed
  /// so a restarted coordinator re-issues exactly these first).
  std::vector<std::size_t> leased_indices() const;

 private:
  struct Lease {
    std::uint64_t worker = 0;
    WallClock::time_point deadline{};
    std::chrono::milliseconds ttl{0};
    std::vector<std::size_t> remaining;
  };

  void reclaim(Lease& lease, std::uint64_t& stolen_counter);

  std::vector<TrialState> states_;
  std::deque<std::size_t> queue_;  // issue order; front = next to grant
  std::unordered_map<std::uint64_t, Lease> leases_;
  std::vector<bool> ever_leased_;  // a re-issue of one of these is a steal
  std::size_t done_ = 0;
  std::uint64_t next_lease_id_ = 1;
  LeaseStats stats_;
};

}  // namespace acf::fleet::remote
