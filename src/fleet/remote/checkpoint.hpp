// FleetCheckpoint: durable progress of a distributed campaign, in the same
// hardened line-oriented discipline as the PR 5 fuzzer checkpoint (versioned
// magic header, validated counts, hex-escaped free text, clean rejection of
// anything malformed).  It records, per finished trial, everything the
// aggregator and JSONL exporter need — so a restarted coordinator resumes
// mid-campaign without recomputing a single finished trial — plus the trial
// ids that were leased-but-unfinished at save time, so resume re-issues
// exactly those first instead of rescanning the whole TrialPlan.
//
// Trial specs are NOT stored: they are a pure function of the plan, and the
// fingerprint refuses to resume a checkpoint against a different plan.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fleet/trial.hpp"

namespace acf::fleet::remote {

struct FleetCheckpoint {
  /// Bumped whenever the serialized layout changes; loaders reject other
  /// major versions instead of misreading them.
  static constexpr std::uint32_t kVersion = 1;

  /// campaign_fingerprint() of the plan this progress belongs to.
  std::uint64_t fingerprint = 0;
  std::uint64_t trial_count = 0;
  /// Finished trials in strictly ascending index order.  The spec inside
  /// each outcome is restored from the plan, never from disk.
  std::vector<std::pair<std::size_t, TrialOutcome>> completed;
  /// Trials under a live lease at save time, ascending; a resuming
  /// coordinator pushes these to the front of the issue queue.
  std::vector<std::size_t> leased;

  void serialize(std::ostream& out) const;
  static std::optional<FleetCheckpoint> deserialize(std::istream& in);

  std::string to_string() const;
  static std::optional<FleetCheckpoint> from_string(const std::string& text);

  /// Write-then-rename so a coordinator killed mid-save leaves the previous
  /// checkpoint intact rather than a torn file.
  bool save(const std::string& path) const;
  static std::optional<FleetCheckpoint> load(const std::string& path);
};

}  // namespace acf::fleet::remote
