#include "fleet/remote/wire.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace acf::fleet::remote {

namespace {

constexpr std::uint8_t kMaxTrialStatus = static_cast<std::uint8_t>(TrialStatus::kSkipped);
constexpr std::uint8_t kMaxStopReason =
    static_cast<std::uint8_t>(fuzzer::StopReason::kTransportDead);

// Strings cross the wire length-prefixed and bounded; anything longer is
// truncated at encode time so a pathological finding cannot poison the
// channel (decode rejects oversized declarations outright).
std::string_view clamp(std::string_view s) {
  return s.substr(0, kMaxStringBytes);
}

void write_outcome(ByteWriter& w, const TrialOutcome& outcome) {
  w.u64(outcome.spec.trial_index);
  w.u64(outcome.spec.arm);
  w.u64(outcome.spec.replica);
  w.u64(outcome.spec.seed);
  w.i64(outcome.spec.sim_budget.count());
  w.u8(static_cast<std::uint8_t>(outcome.status));
  w.u8(static_cast<std::uint8_t>(outcome.stop_reason));
  w.u64(outcome.frames_sent);
  w.u64(outcome.send_failures);
  w.f64(outcome.sim_seconds);
  w.f64(outcome.time_to_failure);
  w.u32(static_cast<std::uint32_t>(outcome.findings.size()));
  for (const std::string& finding : outcome.findings) w.str(clamp(finding));
  w.str(clamp(outcome.error));
}

bool read_outcome(ByteReader& r, TrialOutcome& outcome) {
  outcome.spec.trial_index = r.u64();
  outcome.spec.arm = r.u64();
  outcome.spec.replica = r.u64();
  outcome.spec.seed = r.u64();
  outcome.spec.sim_budget = sim::Duration{r.i64()};
  const std::uint8_t status = r.u8();
  const std::uint8_t stop = r.u8();
  if (!r.ok() || status > kMaxTrialStatus || stop > kMaxStopReason) return false;
  outcome.status = static_cast<TrialStatus>(status);
  outcome.stop_reason = static_cast<fuzzer::StopReason>(stop);
  outcome.frames_sent = r.u64();
  outcome.send_failures = r.u64();
  outcome.sim_seconds = r.f64();
  outcome.time_to_failure = r.f64();
  const std::uint32_t findings = r.u32();
  // Each finding needs at least its 4-byte length prefix: a declared count
  // beyond that is a lie about bytes that cannot exist.
  if (!r.ok() || findings > r.remaining() / 4) return false;
  outcome.findings.reserve(findings);
  for (std::uint32_t i = 0; i < findings; ++i) {
    outcome.findings.push_back(r.str(kMaxStringBytes));
    if (!r.ok()) return false;
  }
  outcome.error = r.str(kMaxStringBytes);
  return r.ok();
}

void write_metrics(ByteWriter& w, const MetricsUpdate& update) {
  w.u32(static_cast<std::uint32_t>(update.counters.size()));
  for (const WireCounter& c : update.counters) {
    w.str(std::string_view(c.name).substr(0, kMaxNameBytes));
    w.u64(c.value);
  }
  w.u32(static_cast<std::uint32_t>(update.gauges.size()));
  for (const WireGauge& g : update.gauges) {
    w.str(std::string_view(g.name).substr(0, kMaxNameBytes));
    w.i64(g.value);
  }
  w.u32(static_cast<std::uint32_t>(update.timers.size()));
  for (const WireTimer& t : update.timers) {
    w.str(std::string_view(t.name).substr(0, kMaxNameBytes));
    w.u64(t.count);
    w.f64(t.sum);
    w.f64(t.min);
    w.f64(t.max);
    w.u32(static_cast<std::uint32_t>(t.samples.size()));
    for (const WireTimerSample& s : t.samples) {
      w.f64(s.value);
      w.u64(s.g);
      w.u64(s.delta);
    }
  }
}

// Non-finite aggregates are hostile data: nothing in the repo records NaN or
// infinity, and letting one into a registry would poison every later merge.
bool finite(double v) noexcept { return std::isfinite(v); }

bool read_metrics(ByteReader& r, MetricsUpdate& update) {
  const std::uint32_t counters = r.u32();
  // Minimum counter entry: 4-byte name length + 8-byte value.  A declared
  // count past that bound promises bytes that cannot exist.
  if (!r.ok() || counters > kMaxMetricsEntries || counters > r.remaining() / 12) {
    return false;
  }
  update.counters.reserve(counters);
  for (std::uint32_t i = 0; i < counters; ++i) {
    WireCounter c;
    c.name = r.str(kMaxNameBytes);
    c.value = r.u64();
    if (!r.ok()) return false;
    update.counters.push_back(std::move(c));
  }
  const std::uint32_t gauges = r.u32();
  if (!r.ok() || gauges > kMaxMetricsEntries || gauges > r.remaining() / 12) {
    return false;
  }
  update.gauges.reserve(gauges);
  for (std::uint32_t i = 0; i < gauges; ++i) {
    WireGauge g;
    g.name = r.str(kMaxNameBytes);
    g.value = r.i64();
    if (!r.ok()) return false;
    update.gauges.push_back(std::move(g));
  }
  const std::uint32_t timers = r.u32();
  // Minimum timer entry: name length + count + sum/min/max + sample count.
  if (!r.ok() || timers > kMaxMetricsEntries || timers > r.remaining() / 40) {
    return false;
  }
  update.timers.reserve(timers);
  for (std::uint32_t i = 0; i < timers; ++i) {
    WireTimer t;
    t.name = r.str(kMaxNameBytes);
    t.count = r.u64();
    t.sum = r.f64();
    t.min = r.f64();
    t.max = r.f64();
    if (!r.ok() || !finite(t.sum) || !finite(t.min) || !finite(t.max)) return false;
    const std::uint32_t samples = r.u32();
    if (!r.ok() || samples > kMaxTimerSamples || samples > r.remaining() / 24) {
      return false;
    }
    t.samples.reserve(samples);
    for (std::uint32_t s = 0; s < samples; ++s) {
      WireTimerSample sample;
      sample.value = r.f64();
      sample.g = r.u64();
      sample.delta = r.u64();
      if (!r.ok() || !finite(sample.value)) return false;
      t.samples.push_back(sample);
    }
    update.timers.push_back(std::move(t));
  }
  return r.ok();
}

}  // namespace

// ------------------------------------------------------------ cursor ------

bool ByteReader::take(std::size_t n) noexcept {
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return bytes_[pos_++];
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str(std::size_t max_bytes) {
  const std::uint32_t len = u32();
  if (!ok_ || len > max_bytes || !take(len)) {
    ok_ = false;
    return {};
  }
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return out;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

// ----------------------------------------------------------- encode -------

std::vector<std::uint8_t> encode(const Message& message) {
  ByteWriter w;
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, HelloMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kHello));
          w.u32(msg.protocol_version);
          w.u64(msg.fingerprint);
          w.u32(msg.capacity);
          w.str(std::string_view(msg.worker_name).substr(0, kMaxNameBytes));
          w.u64(msg.instance_id);
        } else if constexpr (std::is_same_v<T, WelcomeMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kWelcome));
          w.u32(msg.protocol_version);
          w.u64(msg.fingerprint);
          w.u64(msg.trial_count);
          w.u64(msg.session);
        } else if constexpr (std::is_same_v<T, LeaseRequestMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kLeaseRequest));
          w.u32(msg.capacity);
        } else if constexpr (std::is_same_v<T, LeaseGrantMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kLeaseGrant));
          w.u64(msg.lease_id);
          w.u32(msg.deadline_ms);
          w.u32(static_cast<std::uint32_t>(msg.trials.size()));
          for (const std::uint64_t trial : msg.trials) w.u64(trial);
        } else if constexpr (std::is_same_v<T, LeaseResultMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kLeaseResult));
          w.u64(msg.lease_id);
          write_outcome(w, msg.outcome);
        } else if constexpr (std::is_same_v<T, HeartbeatMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kHeartbeat));
          w.u64(msg.lease_id);
          w.u64(msg.completed);
          w.u8(msg.metrics.has_value() ? 1 : 0);
          if (msg.metrics) write_metrics(w, *msg.metrics);
        } else if constexpr (std::is_same_v<T, ShutdownMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kShutdown));
          w.u8(static_cast<std::uint8_t>(msg.reason));
        } else if constexpr (std::is_same_v<T, RejectedMsg>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kRejected));
          w.str(clamp(msg.reason));
        } else if constexpr (std::is_same_v<T, UnknownMsg>) {
          w.u8(msg.type);
          for (const std::uint8_t byte : msg.payload) w.u8(byte);
        }
      },
      message);
  return w.take();
}

// ----------------------------------------------------------- decode -------

std::optional<Message> decode(std::span<const std::uint8_t> payload) {
  if (payload.empty() || payload.size() > kMaxFramePayload) return std::nullopt;
  ByteReader r(payload.subspan(1));
  const std::uint8_t type = payload[0];
  Message out;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello: {
      HelloMsg msg;
      msg.protocol_version = r.u32();
      msg.fingerprint = r.u64();
      msg.capacity = r.u32();
      msg.worker_name = r.str(kMaxNameBytes);
      msg.instance_id = r.u64();
      out = std::move(msg);
      break;
    }
    case MsgType::kWelcome: {
      WelcomeMsg msg;
      msg.protocol_version = r.u32();
      msg.fingerprint = r.u64();
      msg.trial_count = r.u64();
      msg.session = r.u64();
      out = msg;
      break;
    }
    case MsgType::kLeaseRequest: {
      LeaseRequestMsg msg;
      msg.capacity = r.u32();
      out = msg;
      break;
    }
    case MsgType::kLeaseGrant: {
      LeaseGrantMsg msg;
      msg.lease_id = r.u64();
      msg.deadline_ms = r.u32();
      const std::uint32_t count = r.u32();
      if (!r.ok() || count > kMaxLeaseTrials || count > r.remaining() / 8) {
        return std::nullopt;
      }
      msg.trials.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) msg.trials.push_back(r.u64());
      out = std::move(msg);
      break;
    }
    case MsgType::kLeaseResult: {
      LeaseResultMsg msg;
      msg.lease_id = r.u64();
      if (!read_outcome(r, msg.outcome)) return std::nullopt;
      out = std::move(msg);
      break;
    }
    case MsgType::kHeartbeat: {
      HeartbeatMsg msg;
      msg.lease_id = r.u64();
      msg.completed = r.u64();
      const std::uint8_t has_metrics = r.u8();
      if (!r.ok() || has_metrics > 1) return std::nullopt;
      if (has_metrics == 1) {
        msg.metrics.emplace();
        if (!read_metrics(r, *msg.metrics)) return std::nullopt;
      }
      out = std::move(msg);
      break;
    }
    case MsgType::kShutdown: {
      const std::uint8_t reason = r.u8();
      if (!r.ok() || reason > static_cast<std::uint8_t>(ShutdownReason::kCoordinatorPausing)) {
        return std::nullopt;
      }
      out = ShutdownMsg{static_cast<ShutdownReason>(reason)};
      break;
    }
    case MsgType::kRejected: {
      RejectedMsg msg;
      msg.reason = r.str(kMaxStringBytes);
      out = std::move(msg);
      break;
    }
    default: {
      // Tolerated, preserved verbatim.
      UnknownMsg msg;
      msg.type = type;
      msg.payload.assign(payload.begin() + 1, payload.end());
      return Message{std::move(msg)};
    }
  }
  // Strict: a known-type payload must parse cleanly and leave nothing over.
  if (!r.done()) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> frame_message(const Message& message) {
  const std::vector<std::uint8_t> payload = encode(message);
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// ------------------------------------------------------- frame reader -----

bool FrameReader::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return false;
  // Compact lazily: only when the dead prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Validate the pending length prefix eagerly so an oversized declaration
  // poisons the stream before its payload is ever buffered in full.
  if (buffer_.size() - consumed_ >= 4) {
    ByteReader r(std::span<const std::uint8_t>(buffer_).subspan(consumed_, 4));
    const std::uint32_t declared = r.u32();
    if (declared == 0 || declared > max_payload_) {
      poisoned_ = true;
      buffer_.clear();
      consumed_ = 0;
      return false;
    }
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  if (poisoned_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  ByteReader r(std::span<const std::uint8_t>(buffer_).subspan(consumed_, 4));
  const std::uint32_t declared = r.u32();
  if (available < 4 + static_cast<std::size_t>(declared)) return std::nullopt;
  std::vector<std::uint8_t> payload(buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4),
                                    buffer_.begin() +
                                        static_cast<std::ptrdiff_t>(consumed_ + 4 + declared));
  consumed_ += 4 + declared;
  // The next pending prefix (if fully buffered) gets the same eager check
  // feed() applies, so a poisoned tail never yields another frame.
  if (buffer_.size() - consumed_ >= 4) {
    ByteReader peek(std::span<const std::uint8_t>(buffer_).subspan(consumed_, 4));
    const std::uint32_t next_len = peek.u32();
    if (next_len == 0 || next_len > max_payload_) {
      poisoned_ = true;
      buffer_.clear();
      consumed_ = 0;
    }
  }
  return payload;
}

// ------------------------------------------------------- fingerprint ------

std::uint64_t campaign_fingerprint(const TrialPlan& plan, std::string_view world_tag) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  };
  const auto mix_bytes = [&mix](std::string_view text) {
    for (const char c : text) mix(static_cast<std::uint8_t>(c));
    mix(0);  // separator: ("ab","c") must not collide with ("a","bc")
  };
  const auto mix_u64 = [&mix](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  mix_bytes(world_tag);
  for (const std::string& arm : plan.arms()) mix_bytes(arm);
  mix_u64(plan.replicas());
  mix_u64(plan.base_seed());
  mix_u64(static_cast<std::uint64_t>(plan.sim_budget().count()));
  return hash;
}

}  // namespace acf::fleet::remote
