#include "fleet/remote/metrics_wire.hpp"

#include <algorithm>

namespace acf::fleet::remote {

MetricsUpdate to_wire(const metrics::RegistrySnapshot& snap) {
  MetricsUpdate update;
  const std::size_t counters = std::min(snap.counters.size(), kMaxMetricsEntries);
  update.counters.reserve(counters);
  for (std::size_t i = 0; i < counters; ++i) {
    update.counters.push_back({snap.counters[i].name, snap.counters[i].value});
  }
  const std::size_t gauges = std::min(snap.gauges.size(), kMaxMetricsEntries);
  update.gauges.reserve(gauges);
  for (std::size_t i = 0; i < gauges; ++i) {
    update.gauges.push_back({snap.gauges[i].name, snap.gauges[i].value});
  }
  const std::size_t timers = std::min(snap.timers.size(), kMaxMetricsEntries);
  update.timers.reserve(timers);
  for (std::size_t i = 0; i < timers; ++i) {
    const metrics::TimerSnap& t = snap.timers[i];
    WireTimer wire;
    wire.name = t.name;
    wire.count = t.count;
    wire.sum = t.sum;
    wire.min = t.min;
    wire.max = t.max;
    const std::size_t samples = std::min(t.samples.size(), kMaxTimerSamples);
    wire.samples.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      wire.samples.push_back({t.samples[s].value, t.samples[s].g, t.samples[s].delta});
    }
    update.timers.push_back(std::move(wire));
  }
  return update;
}

metrics::RegistrySnapshot from_wire(const MetricsUpdate& update) {
  metrics::RegistrySnapshot snap;
  snap.counters.reserve(update.counters.size());
  for (const WireCounter& c : update.counters) snap.counters.push_back({c.name, c.value});
  snap.gauges.reserve(update.gauges.size());
  for (const WireGauge& g : update.gauges) snap.gauges.push_back({g.name, g.value});
  snap.timers.reserve(update.timers.size());
  for (const WireTimer& t : update.timers) {
    metrics::TimerSnap timer;
    timer.name = t.name;
    timer.count = t.count;
    timer.sum = t.sum;
    timer.min = t.min;
    timer.max = t.max;
    timer.samples.reserve(t.samples.size());
    for (const WireTimerSample& s : t.samples) {
      timer.samples.push_back({s.value, s.g, s.delta});
    }
    snap.timers.push_back(std::move(timer));
  }
  return snap;
}

}  // namespace acf::fleet::remote
