// Converters between metrics::RegistrySnapshot (the in-process view) and
// the wire MetricsUpdate block a heartbeat carries.  Kept out of wire.hpp
// so the wire surface stays standalone for the fleet_wire fuzz target.
#pragma once

#include "fleet/remote/wire.hpp"
#include "metrics/metrics.hpp"

namespace acf::fleet::remote {

/// Snapshot -> wire block.  Meters are dropped (wall-driven rates do not
/// add across clocks); timers carry their raw CKMS samples so coordinator
/// merges keep the ε rank-error bound.  Entries beyond the wire bounds
/// (kMaxMetricsEntries per family, kMaxTimerSamples per timer) are
/// truncated — honest registries sit far below both.
MetricsUpdate to_wire(const metrics::RegistrySnapshot& snap);

/// Wire block -> snapshot.  Quantile fields are left zero; they are
/// recomputed from the samples by merge_snapshots / Registry::absorb.
metrics::RegistrySnapshot from_wire(const MetricsUpdate& update);

}  // namespace acf::fleet::remote
