// ProgressReporter: lock-free counters the fleet workers bump as trials
// finish, plus a formatter the coordinating thread polls to print a
// trials/sec + ETA line.  Wall-clock lives only here — outcomes and
// aggregates never see it, preserving byte-identical fleet output.
//
// Completions may arrive out of trial-index order (remote workers finish
// batches at their own pace) and, after a lease is stolen, the same trial
// may be reported twice — record() only ever counts a completion, and the
// distributed service routes second arrivals to record_duplicate() so the
// done counter can never pass the total.  Lease traffic (outstanding /
// stolen / expired) is first-class: the coordinator publishes the gauges
// here and the status line shows them whenever a remote campaign is active.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "fleet/trial.hpp"
#include "metrics/metrics.hpp"

namespace acf::fleet {

class ProgressReporter {
 public:
  /// Mirrors every counter into `fleet.progress.*` / `fleet.leases.*`
  /// registry instruments (plus a wall-driven completion meter).  Call
  /// before begin(); instrument references are cached, so the per-trial
  /// path stays one extra relaxed add per counter.
  void attach_registry(metrics::Registry* registry);

  /// Arms the reporter for a fleet of `total` trials and starts the clock.
  /// `already_done` seeds the counter on checkpoint resume.
  void begin(std::size_t total, std::size_t already_done = 0);

  /// Called by worker threads; safe concurrently, any completion order.
  void record(const TrialOutcome& outcome) noexcept;

  /// A completion for a trial that was already folded in (a stolen lease
  /// finished twice); counted separately, never advances `completed`.
  void record_duplicate() noexcept {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    if (metric_duplicates_) metric_duplicates_->add(1);
  }

  /// Lease gauges, published by the distributed coordinator.
  void set_lease_counters(std::size_t outstanding, std::uint64_t stolen,
                          std::uint64_t expired) noexcept {
    lease_active_.store(true, std::memory_order_relaxed);
    leases_outstanding_.store(outstanding, std::memory_order_relaxed);
    trials_stolen_.store(stolen, std::memory_order_relaxed);
    leases_expired_.store(expired, std::memory_order_relaxed);
    if (metric_leases_out_) {
      metric_leases_out_->set(static_cast<std::int64_t>(outstanding));
      metric_stolen_->bump_to(stolen);
      metric_expired_->bump_to(expired);
    }
  }

  std::size_t completed() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }
  std::size_t total() const noexcept { return total_; }
  std::uint64_t frames_sent() const noexcept {
    return frames_.load(std::memory_order_relaxed);
  }
  std::size_t errors() const noexcept { return errors_.load(std::memory_order_relaxed); }
  std::uint64_t duplicates() const noexcept {
    return duplicates_.load(std::memory_order_relaxed);
  }
  std::size_t leases_outstanding() const noexcept {
    return leases_outstanding_.load(std::memory_order_relaxed);
  }
  std::uint64_t trials_stolen() const noexcept {
    return trials_stolen_.load(std::memory_order_relaxed);
  }
  std::uint64_t leases_expired() const noexcept {
    return leases_expired_.load(std::memory_order_relaxed);
  }
  bool finished() const noexcept { return completed() >= total_; }

  /// Seconds of wall time since begin().
  double elapsed_seconds() const;

  /// One status line: "fleet: 37/400 trials (2 errors) | 12.3 trials/s |
  /// ETA 29 s"; remote campaigns append "| leases out 3 stolen 1 expired 2".
  std::string line() const;

 private:
  std::size_t total_ = 0;
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> errors_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<bool> lease_active_{false};
  std::atomic<std::size_t> leases_outstanding_{0};
  std::atomic<std::uint64_t> trials_stolen_{0};
  std::atomic<std::uint64_t> leases_expired_{0};
  std::chrono::steady_clock::time_point started_{};
  // Cached registry instruments (null when no registry is attached).
  metrics::Counter* metric_done_ = nullptr;
  metrics::Counter* metric_errors_ = nullptr;
  metrics::Counter* metric_frames_ = nullptr;
  metrics::Counter* metric_duplicates_ = nullptr;
  metrics::Gauge* metric_leases_out_ = nullptr;
  metrics::Counter* metric_stolen_ = nullptr;
  metrics::Counter* metric_expired_ = nullptr;
  metrics::Meter* metric_rate_ = nullptr;
};

}  // namespace acf::fleet
