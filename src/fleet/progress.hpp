// ProgressReporter: lock-free counters the fleet workers bump as trials
// finish, plus a formatter the executor's coordinating thread polls to print
// a trials/sec + ETA line.  Wall-clock lives only here — outcomes and
// aggregates never see it, preserving byte-identical fleet output.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "fleet/trial.hpp"

namespace acf::fleet {

class ProgressReporter {
 public:
  /// Arms the reporter for a fleet of `total` trials and starts the clock.
  void begin(std::size_t total);

  /// Called by worker threads; safe concurrently.
  void record(const TrialOutcome& outcome) noexcept;

  std::size_t completed() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }
  std::size_t total() const noexcept { return total_; }
  std::uint64_t frames_sent() const noexcept {
    return frames_.load(std::memory_order_relaxed);
  }
  std::size_t errors() const noexcept { return errors_.load(std::memory_order_relaxed); }
  bool finished() const noexcept { return completed() >= total_; }

  /// Seconds of wall time since begin().
  double elapsed_seconds() const;

  /// One status line: "fleet: 37/400 trials (2 errors) | 12.3 trials/s | ETA 29 s".
  std::string line() const;

 private:
  std::size_t total_ = 0;
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> errors_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::chrono::steady_clock::time_point started_{};
};

}  // namespace acf::fleet
