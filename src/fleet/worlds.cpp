#include "fleet/worlds.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "fuzzer/campaign.hpp"
#include "fuzzer/generator.hpp"
#include "metrics/metrics.hpp"
#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "transport/virtual_bus_transport.hpp"

namespace acf::fleet {

namespace {

/// Everything one Table V trial touches, owned together: scheduler, bench
/// rig, attacker transport, oracle, generator, campaign.  Nothing escapes
/// the worker thread that builds it.
class UnlockWorld final : public World {
 public:
  UnlockWorld(const UnlockArm& arm, const TrialSpec& spec, metrics::Registry* registry)
      : registry_(registry), bench_(scheduler_, arm.predicate),
        attacker_(bench_.bus(), "attacker") {
    oracles_.add(std::make_unique<oracle::UnlockOracle>(bench_.bus(), &bench_.bcm()));
    fuzzer::FuzzConfig fuzz = arm.fuzz;
    fuzz.seed = spec.seed;
    generator_ = std::make_unique<fuzzer::RandomGenerator>(fuzz);
    fuzzer::CampaignConfig config;
    config.tx_period = fuzz.tx_period;
    config.max_duration =
        spec.sim_budget.count() > 0 ? spec.sim_budget : arm.default_budget;
    config.oracle_period = std::chrono::milliseconds(10);
    config.record_suspicious = false;
    campaign_ = std::make_unique<fuzzer::FuzzCampaign>(scheduler_, attacker_, *generator_,
                                                       &oracles_, config);
  }

  fuzzer::CampaignResult run() override {
    fuzzer::CampaignResult result = campaign_->run();
    if (registry_) {
      // Per-trial totals published exactly once, at trial end: the shared
      // registry sees a deterministic sum whatever the completion order.
      scheduler_.publish_metrics(*registry_);
      bench_.bus().publish_metrics(*registry_);
    }
    return result;
  }

 private:
  metrics::Registry* registry_ = nullptr;
  // Pre-sized to the unlock world's steady-state event population (one slab
  // chunk): trial construction in fleet workers never grows the scheduler.
  sim::Scheduler scheduler_{256};
  vehicle::UnlockTestbench bench_;
  transport::VirtualBusTransport attacker_;
  oracle::CompositeOracle oracles_;
  std::unique_ptr<fuzzer::RandomGenerator> generator_;
  std::unique_ptr<fuzzer::FuzzCampaign> campaign_;
};

}  // namespace

WorldFactory unlock_world_factory(std::vector<UnlockArm> arms,
                                  metrics::Registry* registry) {
  if (arms.empty()) throw std::invalid_argument("unlock_world_factory: no arms");
  auto shared = std::make_shared<const std::vector<UnlockArm>>(std::move(arms));
  return [shared, registry](const TrialSpec& spec) -> std::unique_ptr<World> {
    return std::make_unique<UnlockWorld>(shared->at(spec.arm), spec, registry);
  };
}

}  // namespace acf::fleet
