#include "fleet/aggregator.hpp"

#include <algorithm>

namespace acf::fleet {

double ArmReport::median() const {
  if (median_cached) return cached_median;
  return util::median(samples);
}

void ArmReport::finalize_median() {
  cached_median = util::median_in_place(samples);
  median_cached = true;
}

Aggregator::Aggregator(const TrialPlan& plan) {
  report_.arms.resize(plan.arm_count());
  for (std::size_t arm = 0; arm < plan.arm_count(); ++arm) {
    report_.arms[arm].label = plan.arm_label(arm);
  }
}

void Aggregator::add(const TrialOutcome& outcome) {
  ArmReport& arm = report_.arms.at(outcome.spec.arm);
  ++arm.trials;
  ++report_.trials;
  arm.frames_sent += outcome.frames_sent;
  report_.frames_sent += outcome.frames_sent;
  switch (outcome.status) {
    case TrialStatus::kSkipped:
      ++arm.skipped;
      ++report_.skipped;
      return;
    case TrialStatus::kFailed:
      ++arm.errors;
      ++report_.errors;
      return;
    case TrialStatus::kCompleted:
      break;
  }
  if (outcome.failure_detected()) {
    ++arm.detected;
    arm.median_cached = false;  // sample set is about to change
    // One-sample accumulator merged in, exercising the same parallel-Welford
    // combine a sharded reduction would use.
    util::RunningStats sample;
    sample.add(outcome.time_to_failure);
    arm.time_to_failure.merge(sample);
    arm.samples.push_back(outcome.time_to_failure);
  } else {
    ++arm.timeouts;
  }
  for (const std::string& summary : outcome.findings) {
    auto it = std::find_if(arm.findings.begin(), arm.findings.end(),
                           [&](const auto& entry) { return entry.first == summary; });
    if (it == arm.findings.end()) {
      arm.findings.emplace_back(summary, 1);
    } else {
      ++it->second;
    }
  }
}

void Aggregator::add_all(std::span<const TrialOutcome> outcomes) {
  for (const TrialOutcome& outcome : outcomes) add(outcome);
}

FleetReport aggregate(const TrialPlan& plan, std::span<const TrialOutcome> outcomes) {
  Aggregator aggregator(plan);
  aggregator.add_all(outcomes);
  FleetReport report = aggregator.report();
  for (ArmReport& arm : report.arms) arm.finalize_median();
  return report;
}

}  // namespace acf::fleet
