#include "fleet/jsonl.hpp"

#include <cstdio>
#include <ostream>

namespace acf::fleet {

namespace {

std::string number(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

}  // namespace

std::string JsonlExporter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Escape control characters AND non-ASCII bytes: detector/arm names
        // can carry arbitrary bytes, and a raw 0x80..0xFF byte is not valid
        // UTF-8 on its own — \u00XX keeps every emitted line pure-ASCII
        // JSON.  (The old signed-char "%04x" printed ffffffXX garbage.)
        const auto byte = static_cast<unsigned char>(c);
        if (byte < 0x20 || byte >= 0x7F) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", byte);
          out += buffer;
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

void JsonlExporter::write(const TrialPlan& plan, const TrialOutcome& outcome) {
  const TrialSpec& spec = outcome.spec;
  out_ << "{\"trial\":" << spec.trial_index << ",\"arm\":\""
       << escape(plan.arm_label(spec.arm)) << "\",\"replica\":" << spec.replica
       << ",\"seed\":" << spec.seed << ",\"status\":\"" << to_string(outcome.status)
       << "\",\"stop\":\"" << fuzzer::to_string(outcome.stop_reason)
       << "\",\"frames_sent\":" << outcome.frames_sent
       << ",\"sim_seconds\":" << number(outcome.sim_seconds) << ",\"time_to_failure\":";
  if (outcome.failure_detected()) {
    out_ << number(outcome.time_to_failure);
  } else {
    out_ << "null";
  }
  out_ << ",\"findings\":[";
  for (std::size_t i = 0; i < outcome.findings.size(); ++i) {
    if (i) out_ << ',';
    out_ << '"' << escape(outcome.findings[i]) << '"';
  }
  out_ << ']';
  if (!outcome.error.empty()) out_ << ",\"error\":\"" << escape(outcome.error) << '"';
  out_ << "}\n";
}

void JsonlExporter::write_all(const TrialPlan& plan, std::span<const TrialOutcome> outcomes) {
  for (const TrialOutcome& outcome : outcomes) write(plan, outcome);
}

}  // namespace acf::fleet
