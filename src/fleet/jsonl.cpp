#include "fleet/jsonl.hpp"

#include <cstdio>
#include <ostream>

#include "util/json.hpp"

namespace acf::fleet {

namespace {

std::string number(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

}  // namespace

std::string JsonlExporter::escape(std::string_view text) {
  // One escaping discipline across every JSONL surface (trial lines,
  // metrics snapshots): see util/json.hpp for the rules.
  return util::json_escape(text);
}

void JsonlExporter::write(const TrialPlan& plan, const TrialOutcome& outcome) {
  const TrialSpec& spec = outcome.spec;
  out_ << "{\"trial\":" << spec.trial_index << ",\"arm\":\""
       << escape(plan.arm_label(spec.arm)) << "\",\"replica\":" << spec.replica
       << ",\"seed\":" << spec.seed << ",\"status\":\"" << to_string(outcome.status)
       << "\",\"stop\":\"" << fuzzer::to_string(outcome.stop_reason)
       << "\",\"frames_sent\":" << outcome.frames_sent
       << ",\"sim_seconds\":" << number(outcome.sim_seconds) << ",\"time_to_failure\":";
  if (outcome.failure_detected()) {
    out_ << number(outcome.time_to_failure);
  } else {
    out_ << "null";
  }
  out_ << ",\"findings\":[";
  for (std::size_t i = 0; i < outcome.findings.size(); ++i) {
    if (i) out_ << ',';
    out_ << '"' << escape(outcome.findings[i]) << '"';
  }
  out_ << ']';
  if (!outcome.error.empty()) out_ << ",\"error\":\"" << escape(outcome.error) << '"';
  out_ << "}\n";
}

void JsonlExporter::write_all(const TrialPlan& plan, std::span<const TrialOutcome> outcomes) {
  for (const TrialOutcome& outcome : outcomes) write(plan, outcome);
}

}  // namespace acf::fleet
