// Executor: runs every trial of a TrialPlan across a std::thread worker
// pool.  Workers claim trial indices from an atomic cursor (dynamic
// sharding, so heavy-tailed trials load-balance), construct their world via
// the user's WorldFactory on their own thread, and write the outcome into
// the slot owned by that trial index.  Because a trial's seed, inputs and
// outcome slot depend only on its index, the result vector is byte-identical
// regardless of thread count or scheduling order.
//
// A trial that throws is crash-isolated: the exception is captured into its
// outcome (TrialStatus::kFailed) and the worker moves on — one diverging
// world must not kill a 400-trial fleet.
#pragma once

#include <atomic>
#include <chrono>
#include <vector>

#include "fleet/progress.hpp"
#include "fleet/trial.hpp"
#include "fleet/trial_plan.hpp"

namespace acf::fleet {

struct ExecutorConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Wall-clock interval between progress lines on stderr when a
  /// ProgressReporter is attached; zero suppresses printing (counters still
  /// update).
  std::chrono::milliseconds progress_period{2000};
};

class Executor {
 public:
  explicit Executor(ExecutorConfig config = {});

  /// Runs the whole plan; blocks until every trial finished or cancel() was
  /// observed.  Returns one outcome per trial in trial-index order; trials
  /// never started due to cancellation are TrialStatus::kSkipped.
  std::vector<TrialOutcome> run(const TrialPlan& plan, const WorldFactory& factory,
                                ProgressReporter* progress = nullptr);

  /// Requests an early stop: workers finish their current trial and exit.
  /// Safe from any thread (e.g. a signal-handler relay).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_relaxed); }

  /// Threads run() will actually use for `trial_count` trials.
  unsigned effective_threads(std::size_t trial_count) const noexcept;

 private:
  ExecutorConfig config_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace acf::fleet
