// Trial execution engine and its seams.
//
// run_trial_pool() is the one place in the repo that turns trial indices
// into outcomes on a std::thread pool: workers pull indices from a
// TrialSource, construct their world via the user's WorldFactory on their
// own thread, and hand the outcome to a ResultSink.  Because a trial's
// seed, inputs and identity depend only on its index, the set of outcomes
// is byte-identical regardless of thread count, scheduling order — or which
// process ran it.  The local Executor and the remote fleet worker are both
// thin backends over this seam: the Executor feeds a cursor over the whole
// plan into an index-ordered vector, while the remote worker feeds lease
// batches from the coordinator into a socket.
//
// A trial that throws is crash-isolated: the exception is captured into its
// outcome (TrialStatus::kFailed) and the pool moves on — one diverging
// world must not kill a 400-trial fleet.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <vector>

#include "fleet/progress.hpp"
#include "fleet/trial.hpp"
#include "fleet/trial_plan.hpp"

namespace acf::metrics {
class Registry;
class SnapshotWriter;
}

namespace acf::fleet {

/// Hands out trial indices to pool threads.  next() may block (the remote
/// worker's source waits for lease grants) and must be safe to call from
/// multiple threads; nullopt means drained — the pool thread exits.
class TrialSource {
 public:
  virtual ~TrialSource() = default;
  virtual std::optional<std::size_t> next() = 0;
};

/// Receives outcomes as trials finish — in completion order, not index
/// order.  push() is called concurrently from pool threads and must
/// synchronise internally (or, like the executor's vector sink, write to
/// slots owned by the trial index).
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void push(TrialOutcome outcome) = 0;
};

/// Runs one trial in isolation: builds the world, runs it, captures any
/// exception into a kFailed outcome.  Shared by every backend so local and
/// remote execution of the same spec produce identical bytes.
TrialOutcome run_one_trial(const TrialSpec& spec, const WorldFactory& factory);

/// Folds one finished trial into the `fleet.trial.*` instrument family:
/// status counters, frame totals, and the sim-seconds / time-to-failure
/// timers.  Called by run_trial_pool for every outcome when a registry is
/// attached — the same path locally and on remote workers, so the merged
/// fleet-wide counters equal the in-process ones.
void record_trial_metrics(metrics::Registry& registry, const TrialOutcome& outcome);

struct TrialPoolConfig {
  unsigned threads = 1;
  /// Wall-clock interval between progress lines on stderr when a
  /// ProgressReporter is attached; zero suppresses printing (counters still
  /// update).
  std::chrono::milliseconds progress_period{0};
  /// When set, every outcome is folded in via record_trial_metrics.
  metrics::Registry* registry = nullptr;
  /// When both are set, a snapshot line is emitted every
  /// `snapshot_interval` completed trials (deterministic trigger; the line
  /// content reflects whatever has completed by then).
  metrics::SnapshotWriter* snapshot_writer = nullptr;
  std::size_t snapshot_interval = 0;
};

/// Drains `source` through `factory` on a worker pool, pushing outcomes to
/// `sink`; blocks until the source is drained (or `cancelled` observed).
void run_trial_pool(const TrialPlan& plan, const WorldFactory& factory, TrialSource& source,
                    ResultSink& sink, const TrialPoolConfig& config,
                    const std::atomic<bool>* cancelled = nullptr,
                    ProgressReporter* progress = nullptr);

struct ExecutorConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// See TrialPoolConfig::progress_period (default: a line every 2 s).
  std::chrono::milliseconds progress_period{2000};
  /// Optional observability hooks, forwarded to the trial pool.
  metrics::Registry* registry = nullptr;
  metrics::SnapshotWriter* snapshot_writer = nullptr;
  std::size_t snapshot_interval = 0;
};

/// The local backend: runs every trial of a TrialPlan in this process.
class Executor {
 public:
  explicit Executor(ExecutorConfig config = {});

  /// Runs the whole plan; blocks until every trial finished or cancel() was
  /// observed.  Returns one outcome per trial in trial-index order; trials
  /// never started due to cancellation are TrialStatus::kSkipped.
  std::vector<TrialOutcome> run(const TrialPlan& plan, const WorldFactory& factory,
                                ProgressReporter* progress = nullptr);

  /// Requests an early stop: workers finish their current trial and exit.
  /// Safe from any thread (e.g. a signal-handler relay).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_relaxed); }

  /// Threads run() will actually use for `trial_count` trials.
  unsigned effective_threads(std::size_t trial_count) const noexcept;

 private:
  ExecutorConfig config_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace acf::fleet
