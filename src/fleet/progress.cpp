#include "fleet/progress.hpp"

#include <cstdio>

namespace acf::fleet {

void ProgressReporter::begin(std::size_t total) {
  total_ = total;
  done_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  frames_.store(0, std::memory_order_relaxed);
  started_ = std::chrono::steady_clock::now();
}

void ProgressReporter::record(const TrialOutcome& outcome) noexcept {
  frames_.fetch_add(outcome.frames_sent, std::memory_order_relaxed);
  if (outcome.status == TrialStatus::kFailed) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  done_.fetch_add(1, std::memory_order_relaxed);
}

double ProgressReporter::elapsed_seconds() const {
  const auto elapsed = std::chrono::steady_clock::now() - started_;
  return std::chrono::duration<double>(elapsed).count();
}

std::string ProgressReporter::line() const {
  const std::size_t done = completed();
  const std::size_t errors = this->errors();
  const double seconds = elapsed_seconds();
  const double rate = seconds > 0.0 ? static_cast<double>(done) / seconds : 0.0;
  char buffer[160];
  if (done >= total_ || rate <= 0.0) {
    std::snprintf(buffer, sizeof buffer,
                  "fleet: %zu/%zu trials (%zu errors) | %.1f trials/s | %.1f s elapsed",
                  done, total_, errors, rate, seconds);
  } else {
    const double eta = static_cast<double>(total_ - done) / rate;
    std::snprintf(buffer, sizeof buffer,
                  "fleet: %zu/%zu trials (%zu errors) | %.1f trials/s | ETA %.0f s",
                  done, total_, errors, rate, eta);
  }
  return buffer;
}

}  // namespace acf::fleet
