#include "fleet/progress.hpp"

#include <algorithm>
#include <cstdio>

namespace acf::fleet {

void ProgressReporter::attach_registry(metrics::Registry* registry) {
  if (!registry) {
    metric_done_ = nullptr;
    metric_errors_ = nullptr;
    metric_frames_ = nullptr;
    metric_duplicates_ = nullptr;
    metric_leases_out_ = nullptr;
    metric_stolen_ = nullptr;
    metric_expired_ = nullptr;
    metric_rate_ = nullptr;
    return;
  }
  metric_done_ = &registry->counter("fleet.progress.completed");
  metric_errors_ = &registry->counter("fleet.progress.errors");
  metric_frames_ = &registry->counter("fleet.progress.frames_sent");
  metric_duplicates_ = &registry->counter("fleet.progress.duplicates");
  metric_leases_out_ = &registry->gauge("fleet.leases.outstanding");
  metric_stolen_ = &registry->counter("fleet.leases.trials_stolen");
  metric_expired_ = &registry->counter("fleet.leases.expired");
  metric_rate_ = &registry->meter("fleet.progress.trials");
}

void ProgressReporter::begin(std::size_t total, std::size_t already_done) {
  total_ = total;
  done_.store(already_done, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  frames_.store(0, std::memory_order_relaxed);
  duplicates_.store(0, std::memory_order_relaxed);
  lease_active_.store(false, std::memory_order_relaxed);
  leases_outstanding_.store(0, std::memory_order_relaxed);
  trials_stolen_.store(0, std::memory_order_relaxed);
  leases_expired_.store(0, std::memory_order_relaxed);
  started_ = std::chrono::steady_clock::now();
  if (metric_rate_) metric_rate_->tick_to(0.0);
}

void ProgressReporter::record(const TrialOutcome& outcome) noexcept {
  frames_.fetch_add(outcome.frames_sent, std::memory_order_relaxed);
  if (outcome.status == TrialStatus::kFailed) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (metric_errors_) metric_errors_->add(1);
  }
  done_.fetch_add(1, std::memory_order_relaxed);
  if (metric_done_) {
    metric_done_->add(1);
    metric_frames_->add(outcome.frames_sent);
    metric_rate_->mark(1);
  }
}

double ProgressReporter::elapsed_seconds() const {
  const auto elapsed = std::chrono::steady_clock::now() - started_;
  return std::chrono::duration<double>(elapsed).count();
}

std::string ProgressReporter::line() const {
  // Defensive clamp: a misrouted duplicate must degrade the display, not
  // produce a negative ETA.
  const std::size_t done = std::min(completed(), total_);
  const std::size_t errors = this->errors();
  const double seconds = elapsed_seconds();
  // The registry meter is wall-driven and advanced here, by the single
  // polling thread that prints status lines.
  if (metric_rate_) metric_rate_->tick_to(seconds);
  const double rate = seconds > 0.0 ? static_cast<double>(done) / seconds : 0.0;
  char buffer[224];
  int written;
  if (done >= total_ || rate <= 0.0) {
    written = std::snprintf(buffer, sizeof buffer,
                            "fleet: %zu/%zu trials (%zu errors) | %.1f trials/s | "
                            "%.1f s elapsed",
                            done, total_, errors, rate, seconds);
  } else {
    const double eta = static_cast<double>(total_ - done) / rate;
    written = std::snprintf(buffer, sizeof buffer,
                            "fleet: %zu/%zu trials (%zu errors) | %.1f trials/s | "
                            "ETA %.0f s",
                            done, total_, errors, rate, eta);
  }
  std::string out(buffer, written > 0 ? static_cast<std::size_t>(written) : 0);
  if (lease_active_.load(std::memory_order_relaxed)) {
    std::snprintf(buffer, sizeof buffer,
                  " | leases out %zu stolen %llu expired %llu dup %llu",
                  leases_outstanding(),
                  static_cast<unsigned long long>(trials_stolen()),
                  static_cast<unsigned long long>(leases_expired()),
                  static_cast<unsigned long long>(duplicates()));
    out += buffer;
  }
  return out;
}

}  // namespace acf::fleet
