// Aggregator: reduces per-trial outcomes into per-arm statistics — mean,
// median and Student-t 95% confidence interval of time-to-failure, timeout
// and error counts kept strictly apart from the detection sample (a -1
// sentinel must never poison a mean), and findings deduplicated by summary.
//
// Outcomes are folded in trial-index order whatever order the workers
// finished in, and per-trial accumulators are combined with the existing
// parallel-Welford RunningStats::merge, so the report is a pure function of
// the plan: identical at 1 thread and at 64.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fleet/trial.hpp"
#include "fleet/trial_plan.hpp"
#include "util/stats.hpp"

namespace acf::fleet {

/// Statistics for one arm of the trial matrix.
struct ArmReport {
  std::string label;
  std::size_t trials = 0;    // outcomes folded in
  std::size_t detected = 0;  // trials whose oracle reported a failure
  std::size_t timeouts = 0;  // completed without a failure verdict
  std::size_t errors = 0;    // trials that threw (TrialStatus::kFailed)
  std::size_t skipped = 0;   // cancelled before start
  std::uint64_t frames_sent = 0;
  /// Moments over time-to-failure, detection trials only (simulated s).
  util::RunningStats time_to_failure;
  /// The detection samples themselves, trial-index order (for the median).
  std::vector<double> samples;
  /// Deduplicated finding summaries with occurrence counts, first-seen order.
  std::vector<std::pair<std::string, std::size_t>> findings;

  /// Cached by finalize_median(); falls back to the copying util::median for
  /// hand-built reports that never finalized.
  double median() const;
  /// Selects the median in place (reorders `samples`, O(n), no copy) and
  /// caches it — called once per arm when aggregation completes, so report
  /// printing never re-copies a million-trial sample set.
  void finalize_median();
  util::Interval ci95() const { return util::confidence_interval_95(time_to_failure); }

  bool median_cached = false;
  double cached_median = 0.0;
};

struct FleetReport {
  std::vector<ArmReport> arms;
  std::size_t trials = 0;
  std::size_t errors = 0;
  std::size_t skipped = 0;
  std::uint64_t frames_sent = 0;
};

class Aggregator {
 public:
  explicit Aggregator(const TrialPlan& plan);

  /// Folds one outcome into its arm.  Outcomes may arrive in any order;
  /// add_all() below is the deterministic entry point.
  void add(const TrialOutcome& outcome);

  /// Folds a full executor result in trial-index order.
  void add_all(std::span<const TrialOutcome> outcomes);

  const FleetReport& report() const noexcept { return report_; }

 private:
  FleetReport report_;
};

/// One-shot convenience: aggregate an executor result for its plan.
FleetReport aggregate(const TrialPlan& plan, std::span<const TrialOutcome> outcomes);

}  // namespace acf::fleet
