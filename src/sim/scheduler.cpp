#include "sim/scheduler.hpp"

#include <cstdio>
#include <utility>

namespace acf::sim {

std::string format_millis(SimTime t) {
  const double ms = to_millis(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

EventId Scheduler::enqueue(SimTime when, Duration period, std::function<void()> action) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, period, std::move(action)});
  return EventId{id};
}

EventId Scheduler::schedule_at(SimTime when, std::function<void()> action) {
  return enqueue(when, Duration{0}, std::move(action));
}

EventId Scheduler::schedule_after(Duration delay, std::function<void()> action) {
  return enqueue(now_ + delay, Duration{0}, std::move(action));
}

EventId Scheduler::schedule_every(Duration period, std::function<void()> action) {
  if (period <= Duration{0}) period = Duration{1};
  return enqueue(now_ + period, period, std::move(action));
}

void Scheduler::cancel(EventId id) {
  if (id.valid()) cancelled_.insert(id.value);
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = entry.when;
    ++executed_;
    if (entry.period > Duration{0}) {
      // Re-arm before running so the handler may cancel its own event.
      queue_.push(Entry{entry.when + entry.period, next_seq_++, entry.id, entry.period,
                        entry.action});
      entry.action();
    } else {
      std::function<void()> action = std::move(entry.action);
      action();
    }
    return true;
  }
  return false;
}

void Scheduler::purge_cancelled_top() {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

void Scheduler::run_until(SimTime deadline) {
  // Cancelled entries must be skipped *before* the deadline comparison, or a
  // stale cancelled event inside the window would let step() execute the
  // next live event beyond the deadline.
  purge_cancelled_top();
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
    purge_cancelled_top();
  }
  if (now_ < deadline) now_ = deadline;
}

bool Scheduler::run_until_condition(const std::function<bool()>& stop, SimTime deadline) {
  if (stop()) return true;
  purge_cancelled_top();
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
    if (stop()) return true;
    purge_cancelled_top();
  }
  if (now_ < deadline) now_ = deadline;
  return false;
}

}  // namespace acf::sim
