#include "sim/scheduler.hpp"

#include <algorithm>
#include <cstdio>

#include "metrics/metrics.hpp"

namespace acf::sim {

std::string format_millis(SimTime t) {
  const double ms = to_millis(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

void Scheduler::reserve(std::size_t events) {
  while (chunks_.size() * kChunkSize < events) {
    chunks_.push_back(std::make_unique<Event[]>(kChunkSize));
  }
  if (heap_.capacity() < events) heap_.reserve(events);
}

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNullIndex) {
    const std::uint32_t slot = free_head_;
    free_head_ = event(slot).next_free;
    ++slot_reuses_;
    return slot;
  }
  if (slots_used_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Event[]>(kChunkSize));
  }
  return static_cast<std::uint32_t>(slots_used_++);
}

void Scheduler::release_slot(std::uint32_t slot) {
  Event& ev = event(slot);
  ev.action.reset();
  ++ev.generation;  // invalidate any EventId still naming this slot
  ev.state = SlotState::kFree;
  ev.cancel_requested = false;
  ev.heap_index = kNullIndex;
  ev.next_free = free_head_;
  free_head_ = slot;
}

std::size_t Scheduler::sift_up(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    event(heap_[pos].slot).heap_index = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  event(entry.slot).heap_index = static_cast<std::uint32_t>(pos);
  return pos;
}

std::size_t Scheduler::sift_down(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t smallest = first;
    for (std::size_t child = first + 1; child < last; ++child) {
      if (before(heap_[child], heap_[smallest])) smallest = child;
    }
    if (!before(heap_[smallest], entry)) break;
    heap_[pos] = heap_[smallest];
    event(heap_[pos].slot).heap_index = static_cast<std::uint32_t>(pos);
    pos = smallest;
  }
  heap_[pos] = entry;
  event(entry.slot).heap_index = static_cast<std::uint32_t>(pos);
  return pos;
}

void Scheduler::heap_push(std::uint32_t slot, SimTime when, std::uint64_t seq) {
  heap_.push_back(HeapEntry{when, seq, slot});
  event(slot).heap_index = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

void Scheduler::heap_remove(std::size_t pos) {
  event(heap_[pos].slot).heap_index = kNullIndex;
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  heap_.pop_back();
  event(heap_[pos].slot).heap_index = static_cast<std::uint32_t>(pos);
  // The relocated tail entry may belong above or below its new position.
  if (sift_down(pos) == pos) sift_up(pos);
}

void Scheduler::heap_pop_root() { heap_remove(0); }

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint32_t slot = static_cast<std::uint32_t>((id.value & 0xFFFFFFFFULL) - 1);
  const std::uint32_t generation = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= slots_used_) return;
  Event& ev = event(slot);
  if (ev.generation != generation) return;  // stale id: the event already died
  if (ev.state == SlotState::kQueued) {
    heap_remove(ev.heap_index);
    release_slot(slot);
    --live_;
  } else if (ev.state == SlotState::kRunning) {
    // Cancelled from inside its own handler: defer the release until the
    // handler returns (destroying an executing closure would be UB).  For a
    // periodic event this also suppresses the re-arm.
    ev.cancel_requested = true;
  }
}

void Scheduler::dispatch_top() {
  const std::uint32_t slot = heap_[0].slot;
  Event& ev = event(slot);  // slab slots are stable; safe across handler calls
  now_ = ev.when;
  heap_pop_root();
  ev.state = SlotState::kRunning;
  ++executed_;
  if (ev.period > Duration{0}) {
    // Reserve the re-arm sequence number before running the handler, exactly
    // where the previous implementation pushed its re-arm entry: anything the
    // handler schedules at when+period must fire AFTER the next tick.
    const std::uint64_t rearm_seq = next_seq_++;
    ev.action();
    if (ev.cancel_requested) {
      release_slot(slot);
      --live_;
    } else {
      ev.when += ev.period;
      ev.seq = rearm_seq;
      ev.state = SlotState::kQueued;
      heap_push(slot, ev.when, ev.seq);
    }
  } else {
    --live_;  // a one-shot stops being "pending" the moment it starts running
    ev.action();
    release_slot(slot);
  }
}

bool Scheduler::step() {
  if (heap_.empty()) return false;
  dispatch_top();
  return true;
}

void Scheduler::run_until(SimTime deadline) {
  while (!heap_.empty() && heap_[0].when <= deadline) dispatch_top();
  if (now_ < deadline) now_ = deadline;
}

bool Scheduler::run_until_condition(const std::function<bool()>& stop, SimTime deadline) {
  if (stop()) return true;
  while (!heap_.empty() && heap_[0].when <= deadline) {
    dispatch_top();
    if (stop()) return true;
  }
  if (now_ < deadline) now_ = deadline;
  return false;
}

SchedulerStats Scheduler::stats() const noexcept {
  return SchedulerStats{chunks_.size(), chunks_.size() * kChunkSize, heap_.capacity(),
                        slot_reuses_, action_heap_spills_};
}

void Scheduler::publish_metrics(metrics::Registry& registry) const {
  const SchedulerStats s = stats();
  registry.counter("sim.scheduler.events_executed").add(executed_);
  registry.counter("sim.scheduler.slot_reuses").add(s.slot_reuses);
  registry.counter("sim.scheduler.action_heap_spills").add(s.action_heap_spills);
  registry.counter("sim.scheduler.slab_capacity_max").bump_to(s.slab_capacity);
  registry.counter("sim.scheduler.heap_capacity_max").bump_to(s.heap_capacity);
}

}  // namespace acf::sim
