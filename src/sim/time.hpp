// Simulated-time vocabulary types.
//
// The whole framework runs on a discrete-event clock: a one-hour fuzz
// campaign (Table V needs ~24 runs with means in the hundreds-to-thousands
// of seconds) executes in wall-clock milliseconds.  Nanosecond resolution is
// enough to model individual CAN bit times (2 us at 500 kb/s).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace acf::sim {

using SimTime = std::chrono::nanoseconds;   // absolute simulated time since start
using Duration = std::chrono::nanoseconds;  // simulated interval

using namespace std::chrono_literals;  // NOLINT: vocabulary for all sim code

/// Seconds as double, for reporting.
constexpr double to_seconds(Duration d) noexcept {
  return std::chrono::duration<double>(d).count();
}

/// Milliseconds as double, for reporting (paper tables use ms timestamps).
constexpr double to_millis(Duration d) noexcept {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// "5328.009" style millisecond timestamp used in the paper's tables.
std::string format_millis(SimTime t);

}  // namespace acf::sim
