// PooledAction: type-erased void() callable built for the scheduler's event
// slab.  Unlike std::function it is immobile (events never relocate inside
// the slab, so no move support is carried around), reusable in place
// (emplace/reset), and allocation-free for any capture up to kInlineBytes —
// which covers every callback the framework schedules on its hot paths.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace acf::sim {

class PooledAction {
 public:
  /// Inline capture budget.  Sized so a [this, index]-style lambda — or a
  /// whole std::function, should one be forwarded — stays in the slab.
  static constexpr std::size_t kInlineBytes = 48;

  PooledAction() = default;
  PooledAction(const PooledAction&) = delete;
  PooledAction& operator=(const PooledAction&) = delete;
  ~PooledAction() { reset(); }

  /// True when the callable object lives in the inline buffer (no heap).
  template <typename F>
  static constexpr bool inlined() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t);
  }

  /// Installs a new callable, destroying any previous one.
  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "action must be callable as void()");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    reset();
    void* where = buf_;
    if constexpr (!inlined<F>()) {
      heap_ = ::operator new(sizeof(Fn));
      where = heap_;
    }
    ::new (where) Fn(std::forward<F>(fn));
    invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
    destroy_ = [](void* target) { static_cast<Fn*>(target)->~Fn(); };
  }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(target());
    if (heap_ != nullptr) {
      ::operator delete(heap_);
      heap_ = nullptr;
    }
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

  void operator()() { invoke_(target()); }
  explicit operator bool() const noexcept { return invoke_ != nullptr; }
  bool on_heap() const noexcept { return heap_ != nullptr; }

 private:
  void* target() noexcept { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  void* heap_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace acf::sim
