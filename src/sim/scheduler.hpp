// Discrete-event scheduler: the heartbeat of the virtual bus, all ECU models
// and the fuzzer.  Strictly deterministic: events at equal times fire in
// scheduling order (FIFO tie-break), so a campaign seed reproduces a run
// bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace acf::sim {

/// Token identifying a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const noexcept { return now_; }

  /// One-shot event at absolute simulated time `when` (clamped to >= now).
  EventId schedule_at(SimTime when, std::function<void()> action);

  /// One-shot event `delay` after now.
  EventId schedule_after(Duration delay, std::function<void()> action);

  /// Repeating event, first firing at now + period, then every `period`.
  /// Requires period > 0 (a zero period would never advance the clock).
  EventId schedule_every(Duration period, std::function<void()> action);

  /// Cancels a pending (or repeating) event.  Safe to call from inside an
  /// event handler, including the event's own handler.
  void cancel(EventId id);

  /// Executes the next pending event; returns false if the queue is empty.
  bool step();

  /// Runs all events up to and including time `deadline`; the clock ends at
  /// `deadline` even if the queue drains early.
  void run_until(SimTime deadline);

  /// Runs for `d` of simulated time from now.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until `stop()` returns true (checked after every event) or the
  /// deadline passes.  Returns true if the predicate fired.
  bool run_until_condition(const std::function<bool()>& stop, SimTime deadline);

  std::size_t pending_events() const noexcept { return queue_.size() - cancelled_.size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for equal times
    std::uint64_t id;
    Duration period;  // zero => one-shot
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  EventId enqueue(SimTime when, Duration period, std::function<void()> action);
  /// Pops cancelled entries sitting at the head of the queue.
  void purge_cancelled_top();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace acf::sim
