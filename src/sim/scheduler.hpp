// Discrete-event scheduler: the heartbeat of the virtual bus, all ECU models
// and the fuzzer.  Strictly deterministic: events at equal times fire in
// scheduling order (FIFO tie-break), so a campaign seed reproduces a run
// bit-for-bit.
//
// Built for throughput: events live in a slab of stable 128-byte slots
// recycled through a free list, callables are stored inline (PooledAction
// small-buffer optimisation), and the ready queue is a 4-ary indexed heap —
// each slot knows its heap position, so cancel() is a true O(log n) removal
// with no tombstones to skip, and a periodic event re-arms by pushing the
// SAME slot back (no callable copy, no allocation).  Steady-state operation
// of a warmed-up world performs zero heap allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/pooled_action.hpp"
#include "sim/time.hpp"

namespace acf::metrics {
class Registry;
}

namespace acf::sim {

/// Token identifying a scheduled event; used for cancellation.  Encodes the
/// slab slot plus a generation counter, so an id kept past its event's death
/// can never cancel an unrelated later event recycled into the same slot.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Allocation telemetry, used by tests and the perf harness to prove the
/// steady state is allocation-free (slab/heap capacities stop growing).
struct SchedulerStats {
  std::size_t slab_chunks = 0;    // 256-event chunks allocated
  std::size_t slab_capacity = 0;  // total event slots
  std::size_t heap_capacity = 0;  // ready-queue capacity
  std::uint64_t slot_reuses = 0;  // events served from the free list
  std::uint64_t action_heap_spills = 0;  // callables too big for the inline buffer
};

class Scheduler {
 public:
  Scheduler() = default;
  /// Pre-sizes the event slab and ready queue (fleet trial setup passes the
  /// expected steady-state event count so per-trial worlds never grow).
  explicit Scheduler(std::size_t reserve_events) { reserve(reserve_events); }
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Ensures capacity for `events` concurrently pending events.
  void reserve(std::size_t events);

  SimTime now() const noexcept { return now_; }

  /// One-shot event at absolute simulated time `when` (clamped to >= now).
  template <typename F>
  EventId schedule_at(SimTime when, F&& action) {
    return arm(when < now_ ? now_ : when, Duration{0}, std::forward<F>(action));
  }

  /// One-shot event `delay` after now.
  template <typename F>
  EventId schedule_after(Duration delay, F&& action) {
    return arm(now_ + delay, Duration{0}, std::forward<F>(action));
  }

  /// Repeating event, first firing at now + period, then every `period`.
  /// Requires period > 0 (a zero period would never advance the clock).
  template <typename F>
  EventId schedule_every(Duration period, F&& action) {
    if (period <= Duration{0}) period = Duration{1};
    return arm(now_ + period, period, std::forward<F>(action));
  }

  /// Cancels a pending (or repeating) event.  Safe to call from inside an
  /// event handler, including the event's own handler.  O(log n).
  void cancel(EventId id);

  /// Executes the next pending event; returns false if the queue is empty.
  bool step();

  /// Runs all events up to and including time `deadline`; the clock ends at
  /// `deadline` even if the queue drains early.
  void run_until(SimTime deadline);

  /// Runs for `d` of simulated time from now.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until `stop()` returns true (checked after every event) or the
  /// deadline passes.  Returns true if the predicate fired.
  bool run_until_condition(const std::function<bool()>& stop, SimTime deadline);

  std::size_t pending_events() const noexcept { return live_; }
  std::uint64_t executed_events() const noexcept { return executed_; }
  SchedulerStats stats() const noexcept;

  /// Adds this scheduler's lifetime totals into `sim.scheduler.*` registry
  /// counters (capacities advance monotonically via bump_to, so the
  /// aggregate is a max across worlds and stays order-independent).
  /// Worlds call this once at trial end.
  void publish_metrics(metrics::Registry& registry) const;

 private:
  static constexpr std::uint32_t kNullIndex = ~std::uint32_t{0};
  static constexpr std::size_t kChunkShift = 8;  // 256 events per slab chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  enum class SlotState : std::uint8_t { kFree, kQueued, kRunning };

  struct Event {
    SimTime when{0};
    std::uint64_t seq = 0;  // FIFO tie-break for equal times
    Duration period{0};     // zero => one-shot
    std::uint32_t generation = 1;
    std::uint32_t heap_index = kNullIndex;
    std::uint32_t next_free = kNullIndex;
    SlotState state = SlotState::kFree;
    bool cancel_requested = false;
    PooledAction action;
  };

  /// Heap entries carry the ordering key so sifting never chases into the
  /// slab; the slot's heap_index back-pointer makes removal indexed.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  static std::uint64_t make_id(std::uint32_t slot, std::uint32_t generation) noexcept {
    return (static_cast<std::uint64_t>(generation) << 32) | (slot + 1ULL);
  }

  Event& event(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_push(std::uint32_t slot, SimTime when, std::uint64_t seq);
  void heap_pop_root();
  void heap_remove(std::size_t pos);
  std::size_t sift_up(std::size_t pos);
  std::size_t sift_down(std::size_t pos);
  void dispatch_top();

  template <typename F>
  EventId arm(SimTime when, Duration period, F&& action) {
    const std::uint32_t slot = acquire_slot();
    Event& ev = event(slot);
    ev.when = when;
    ev.seq = next_seq_++;
    ev.period = period;
    ev.state = SlotState::kQueued;
    ev.cancel_requested = false;
    ev.action.emplace(std::forward<F>(action));
    if (ev.action.on_heap()) ++action_heap_spills_;
    heap_push(slot, ev.when, ev.seq);
    ++live_;
    return EventId{make_id(slot, ev.generation)};
  }

  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNullIndex;
  std::size_t slots_used_ = 0;  // high-water slot count (never shrinks)
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::uint64_t slot_reuses_ = 0;
  std::uint64_t action_heap_spills_ = 0;
};

}  // namespace acf::sim
