// The combinatorial-explosion arithmetic of the paper's §V: how large a
// fuzz space is and how long exhausting it takes at a given transmit rate —
// "a standard CAN packet with a 11-bit id and a one byte payload has half a
// million packet combinations (2^19) ... over eight minutes ... add another
// data byte and all combinations transmit over 1.5 days".
#pragma once

#include <cstdint>
#include <string>

#include "fuzzer/config.hpp"
#include "sim/time.hpp"

namespace acf::analysis {

struct SpaceReport {
  std::uint64_t id_space = 0;
  std::uint64_t frame_space = 0;   // saturates at uint64 max
  bool saturated = false;
  sim::Duration exhaust_time{0};   // at the config's tx period
  double exhaust_days = 0.0;
};

SpaceReport analyze_space(const fuzzer::FuzzConfig& config);

/// Frame space of an 11-bit-id packet with exactly `payload_bytes` payload
/// bytes (the paper's worked example: payload_bytes=1 -> 2^19).
std::uint64_t fixed_length_space(std::size_t payload_bytes);

/// Human-readable duration ("8.7 min", "1.55 days", "3.1e+06 years").
std::string humanize_duration(double seconds);

}  // namespace acf::analysis
