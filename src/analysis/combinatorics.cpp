#include "analysis/combinatorics.hpp"

#include <cstdio>
#include <limits>

namespace acf::analysis {

SpaceReport analyze_space(const fuzzer::FuzzConfig& config) {
  SpaceReport report;
  report.id_space = config.id_space();
  report.frame_space = config.frame_space();
  report.saturated = report.frame_space == std::numeric_limits<std::uint64_t>::max();
  report.exhaust_time = config.exhaust_time();
  report.exhaust_days = sim::to_seconds(report.exhaust_time) / 86'400.0;
  return report;
}

std::uint64_t fixed_length_space(std::size_t payload_bytes) {
  std::uint64_t space = can::kMaxStandardId + 1ULL;  // 2048 ids
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    if (space > std::numeric_limits<std::uint64_t>::max() / 256) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    space *= 256;
  }
  return space;
}

std::string humanize_duration(double seconds) {
  char buf[64];
  if (seconds < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1f s", seconds);
  } else if (seconds < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1f min", seconds / 60.0);
  } else if (seconds < 86'400.0) {
    std::snprintf(buf, sizeof buf, "%.2f hours", seconds / 3600.0);
  } else if (seconds < 2.0 * 31'557'600.0) {
    std::snprintf(buf, sizeof buf, "%.2f days", seconds / 86'400.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g years", seconds / 31'557'600.0);
  }
  return buf;
}

}  // namespace acf::analysis
