// Fig. 1 of the paper: usage of testing methods in the automotive industry,
// derived from the survey data of Altinger, Wotawa & Schurius (JAMAICA
// 2014).  The figure's point is that fuzz testing sits near the bottom of
// industry practice while functional testing dominates — the motivation for
// the whole paper.  The derived percentages are embedded here as the
// dataset the bench renders.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace acf::analysis {

struct SurveyEntry {
  std::string method;
  double usage_pct;  // share of surveyed automotive teams using the method
};

/// Testing-method usage, descending — fuzz testing near the tail.
std::span<const SurveyEntry> testing_method_survey();

/// Renders the Fig. 1 bar chart.
std::string render_survey_chart();

}  // namespace acf::analysis
