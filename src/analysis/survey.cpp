#include "analysis/survey.hpp"

#include "analysis/report.hpp"

namespace acf::analysis {

namespace {
// Derived from the Altinger et al. survey as presented in the paper's
// Fig. 1: established functional methods dominate; security-oriented
// dynamic methods (fuzzing among them) see marginal adoption.
const std::vector<SurveyEntry> kSurvey = {
    {"Functional testing", 95.0},
    {"Requirements-based testing", 88.0},
    {"Regression testing", 75.0},
    {"HIL testing", 72.0},
    {"Code reviews", 65.0},
    {"Static analysis", 55.0},
    {"SIL testing", 52.0},
    {"Model-based testing", 45.0},
    {"Back-to-back testing", 30.0},
    {"Robustness testing", 22.0},
    {"Penetration testing", 12.0},
    {"Fuzz testing", 8.0},
    {"Formal verification", 5.0},
};
}  // namespace

std::span<const SurveyEntry> testing_method_survey() { return kSurvey; }

std::string render_survey_chart() {
  std::vector<std::string> labels;
  std::vector<double> values;
  for (const auto& entry : kSurvey) {
    labels.push_back(entry.method);
    values.push_back(entry.usage_pct);
  }
  return bar_chart(labels, values, 100.0);
}

}  // namespace acf::analysis
