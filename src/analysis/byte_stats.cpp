#include "analysis/byte_stats.hpp"

#include <cmath>

namespace acf::analysis {

void BytePositionStats::add(const can::CanFrame& frame) {
  if (frame.is_remote()) return;
  ++frames_;
  const auto payload = frame.payload();
  for (std::size_t i = 0; i < payload.size() && i < kPositions; ++i) {
    per_position_[i].add(payload[i]);
    ++histograms_[i][payload[i]];
    overall_.add(payload[i]);
  }
}

void BytePositionStats::add_all(std::span<const trace::TimestampedFrame> frames) {
  for (const auto& entry : frames) add(entry.frame);
}

double BytePositionStats::mean(std::size_t position) const {
  return position < kPositions ? per_position_[position].mean() : 0.0;
}

std::uint64_t BytePositionStats::count(std::size_t position) const {
  return position < kPositions ? per_position_[position].count() : 0;
}

double BytePositionStats::overall_mean() const { return overall_.mean(); }

std::span<const std::uint64_t> BytePositionStats::value_histogram(std::size_t position) const {
  static constexpr std::array<std::uint64_t, 256> kEmpty{};
  return position < kPositions ? std::span<const std::uint64_t>(histograms_[position])
                               : std::span<const std::uint64_t>(kEmpty);
}

double BytePositionStats::flatness() const {
  const double overall = overall_mean();
  double worst = 0.0;
  for (std::size_t i = 0; i < kPositions; ++i) {
    if (per_position_[i].count() == 0) continue;
    worst = std::max(worst, std::fabs(per_position_[i].mean() - overall));
  }
  return worst;
}

}  // namespace acf::analysis
