// Plain-text reporting: aligned tables (the paper's Tables II-V) and ASCII
// bar series (its Figures) so every bench regenerates its artefact in a
// directly comparable shape on stdout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace acf::analysis {

/// Column-aligned table with a header row and a rule underneath.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal ASCII bar chart: one labelled bar per value.
std::string bar_chart(std::span<const std::string> labels, std::span<const double> values,
                      double max_value = 0.0, std::size_t width = 50);

/// Time-series rendering: one row per sample, value bar + numeric.
std::string series_chart(std::span<const double> times, std::span<const double> values,
                         const std::string& value_label, double lo, double hi,
                         std::size_t width = 60);

/// "431" / "1959.4" compact numeric formatting.
std::string format_number(double value, int decimals = 0);

}  // namespace acf::analysis
