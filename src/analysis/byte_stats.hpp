// Per-byte-position statistics over a frame stream — the data-integrity
// check behind the paper's Figs. 4 and 5: captured vehicle traffic shows a
// strongly non-uniform mean per byte position, while a correct uniform
// fuzzer converges on a flat mean of 127.5 at every position.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "can/frame.hpp"
#include "trace/capture.hpp"
#include "util/stats.hpp"

namespace acf::analysis {

class BytePositionStats {
 public:
  void add(const can::CanFrame& frame);
  void add_all(std::span<const trace::TimestampedFrame> frames);

  std::uint64_t frames() const noexcept { return frames_; }

  /// Mean value of bytes observed at `position` (0-based).
  double mean(std::size_t position) const;
  std::uint64_t count(std::size_t position) const;
  /// Grand mean over every byte in every message (the paper quotes 127 for
  /// the fuzzer output).
  double overall_mean() const;

  /// 256-bin value histogram at a position (for uniformity chi-square).
  std::span<const std::uint64_t> value_histogram(std::size_t position) const;

  /// Max |mean(position) - overall| across positions: 0 for perfectly flat.
  double flatness() const;

  static constexpr std::size_t kPositions = can::kMaxClassicPayload;

 private:
  std::array<util::RunningStats, kPositions> per_position_{};
  std::array<std::array<std::uint64_t, 256>, kPositions> histograms_{};
  util::RunningStats overall_;
  std::uint64_t frames_ = 0;
};

}  // namespace acf::analysis
