#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace acf::analysis {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| " << cells[c];
      out << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << '|' << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string bar_chart(std::span<const std::string> labels, std::span<const double> values,
                      double max_value, std::size_t width) {
  if (max_value <= 0.0) {
    for (double v : values) max_value = std::max(max_value, v);
    if (max_value <= 0.0) max_value = 1.0;
  }
  std::size_t label_width = 0;
  for (const auto& label : labels) label_width = std::max(label_width, label.size());

  std::ostringstream out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::string label = i < labels.size() ? labels[i] : std::string();
    out << label << std::string(label_width - label.size() + 1, ' ') << '|';
    const double clamped = std::clamp(values[i], 0.0, max_value);
    const auto bars = static_cast<std::size_t>(std::lround(clamped / max_value *
                                                           static_cast<double>(width)));
    out << std::string(bars, '#') << ' ' << format_number(values[i], 1) << '\n';
  }
  return out.str();
}

std::string series_chart(std::span<const double> times, std::span<const double> values,
                         const std::string& value_label, double lo, double hi,
                         std::size_t width) {
  std::ostringstream out;
  out << "t(s)      " << value_label << '\n';
  const double span = hi > lo ? hi - lo : 1.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    char head[32];
    std::snprintf(head, sizeof head, "%8.2f  ", i < times.size() ? times[i] : 0.0);
    out << head;
    const double clamped = std::clamp(values[i], lo, hi);
    const auto pos = static_cast<std::size_t>(std::lround((clamped - lo) / span *
                                                          static_cast<double>(width - 1)));
    out << std::string(pos, ' ') << '*' << std::string(width - 1 - pos, ' ') << ' '
        << format_number(values[i], 1) << '\n';
  }
  return out.str();
}

std::string format_number(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace acf::analysis
