// Mutation-based generation: fuzzing "in a specific message space, close to
// known messages, whether determined from design or data traffic capture" —
// the targeted mode the paper concludes is where automotive fuzzing earns
// its keep.  Mutates frames from a captured corpus instead of drawing
// uniformly.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzzer/generator.hpp"
#include "trace/capture.hpp"
#include "util/rng.hpp"

namespace acf::fuzzer {

/// Individual mutation operators (also usable directly in tests).
namespace mutations {
can::CanFrame flip_random_bit(const can::CanFrame& frame, util::Rng& rng);
can::CanFrame randomize_byte(const can::CanFrame& frame, util::Rng& rng);
can::CanFrame jitter_id(const can::CanFrame& frame, util::Rng& rng, std::uint32_t radius);
can::CanFrame resize_payload(const can::CanFrame& frame, util::Rng& rng);
}  // namespace mutations

struct MutationPlan {
  /// Mutations applied per emitted frame: uniform in [min, max].
  std::uint8_t min_mutations = 1;
  std::uint8_t max_mutations = 3;
  /// Relative operator weights.
  double weight_bit_flip = 4.0;
  double weight_byte_randomize = 3.0;
  double weight_id_jitter = 1.0;
  double weight_resize = 1.0;
  /// Id jitter radius.
  std::uint32_t id_radius = 8;
  std::uint64_t seed = 0xACF1;
};

/// Draws a corpus frame uniformly and applies 1..N weighted mutations.
class MutationGenerator final : public FrameGenerator {
 public:
  /// `corpus` must be non-empty; typically the payload frames of a capture.
  MutationGenerator(std::vector<can::CanFrame> corpus, MutationPlan plan = {});

  /// Convenience: corpus from a capture tap's recorded frames.
  static MutationGenerator from_capture(const std::vector<trace::TimestampedFrame>& capture,
                                        MutationPlan plan = {});

  std::string_view name() const override { return "mutation"; }
  std::optional<can::CanFrame> next() override;
  void rewind() override;

  std::size_t corpus_size() const noexcept { return corpus_.size(); }

 private:
  can::CanFrame mutate_once(const can::CanFrame& frame);

  std::vector<can::CanFrame> corpus_;
  MutationPlan plan_;
  util::Rng rng_;
};

}  // namespace acf::fuzzer
