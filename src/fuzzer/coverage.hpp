// Fuzz-coverage metrics: the paper's challenge §III-B4 is that CPS fuzzing
// lacks measurable effectiveness metrics ("the final count of bugs found ...
// can only be relative to other runs on the same system").  This tracker
// offers input-space metrics that *are* comparable across runs of the same
// configuration: which (id, dlc) cells were exercised, per-position byte
// coverage, and oracle events per kiloframe.
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <string>

#include "can/frame.hpp"
#include "fuzzer/config.hpp"

namespace acf::metrics {
class Registry;
}

namespace acf::fuzzer {

class CoverageTracker {
 public:
  void add(const can::CanFrame& frame);
  void add_oracle_event() noexcept { ++oracle_events_; }

  std::uint64_t frames() const noexcept { return frames_; }

  /// Distinct standard ids exercised (0..2048).
  std::size_t ids_covered() const noexcept { return ids_.count(); }
  /// Distinct (id, dlc) cells exercised (out of 2048 x 9).
  std::size_t id_dlc_cells_covered() const noexcept { return id_dlc_.count(); }
  /// Distinct byte values seen at payload position `pos` (0..256).
  std::size_t byte_values_covered(std::size_t pos) const;

  /// Fraction of the config's id space touched.
  double id_coverage(const FuzzConfig& config) const;
  /// Oracle events per 1000 frames — the run-comparable yield metric.
  double events_per_kiloframe() const;

  /// Multi-line human-readable summary.
  std::string report(const FuzzConfig& config) const;

  /// Adds this tracker's totals into `fuzz.coverage.*` registry counters:
  /// frames and oracle events sum across trials; distinct ids and (id,dlc)
  /// cells are per-trial set sizes that do not sum, so they publish as
  /// `*_max` watermarks (merged by max).  Worlds call it once at trial end.
  void publish_metrics(metrics::Registry& registry) const;

 private:
  std::uint64_t frames_ = 0;
  std::uint64_t oracle_events_ = 0;
  std::bitset<2048> ids_;
  std::bitset<2048 * 9> id_dlc_;
  std::array<std::bitset<256>, can::kMaxClassicPayload> byte_values_{};
};

}  // namespace acf::fuzzer
