#include "fuzzer/mutator.hpp"

#include <algorithm>

#include "fuzzer/mutation_core.hpp"

namespace acf::fuzzer {

namespace mutations {

can::CanFrame flip_random_bit(const can::CanFrame& frame, util::Rng& rng) {
  if (frame.length() == 0) return frame;
  std::vector<std::uint8_t> bytes(frame.payload().begin(), frame.payload().end());
  mutcore::flip_bit(rng, bytes);
  return can::CanFrame::data(frame.id(), bytes, frame.format()).value_or(frame);
}

can::CanFrame randomize_byte(const can::CanFrame& frame, util::Rng& rng) {
  if (frame.length() == 0) return frame;
  std::vector<std::uint8_t> bytes(frame.payload().begin(), frame.payload().end());
  mutcore::overwrite_byte(rng, bytes);
  return can::CanFrame::data(frame.id(), bytes, frame.format()).value_or(frame);
}

can::CanFrame jitter_id(const can::CanFrame& frame, util::Rng& rng, std::uint32_t radius) {
  if (radius == 0) return frame;
  const auto max_id = frame.is_extended() ? can::kMaxExtendedId : can::kMaxStandardId;
  const std::int64_t offset =
      static_cast<std::int64_t>(rng.next_in(0, 2 * radius)) - static_cast<std::int64_t>(radius);
  std::int64_t id = static_cast<std::int64_t>(frame.id()) + offset;
  id = std::clamp<std::int64_t>(id, 0, max_id);
  return can::CanFrame::data(static_cast<std::uint32_t>(id), frame.payload(), frame.format())
      .value_or(frame);
}

can::CanFrame resize_payload(const can::CanFrame& frame, util::Rng& rng) {
  std::vector<std::uint8_t> bytes(frame.payload().begin(), frame.payload().end());
  const auto new_len = static_cast<std::size_t>(rng.next_in(0, can::kMaxClassicPayload));
  while (bytes.size() < new_len) bytes.push_back(rng.next_byte());
  bytes.resize(new_len);
  return can::CanFrame::data(frame.id(), bytes, frame.format()).value_or(frame);
}

}  // namespace mutations

MutationGenerator::MutationGenerator(std::vector<can::CanFrame> corpus, MutationPlan plan)
    : corpus_(std::move(corpus)), plan_(plan), rng_(plan.seed) {
  if (corpus_.empty()) corpus_.push_back(can::CanFrame{});
}

MutationGenerator MutationGenerator::from_capture(
    const std::vector<trace::TimestampedFrame>& capture, MutationPlan plan) {
  std::vector<can::CanFrame> corpus;
  corpus.reserve(capture.size());
  for (const auto& entry : capture) corpus.push_back(entry.frame);
  return MutationGenerator(std::move(corpus), plan);
}

void MutationGenerator::rewind() {
  rng_ = util::Rng(plan_.seed);
  generated_ = 0;
}

std::optional<can::CanFrame> MutationGenerator::next() {
  ++generated_;
  can::CanFrame frame = rng_.pick(corpus_);
  const auto count = static_cast<std::uint8_t>(
      rng_.next_in(plan_.min_mutations, std::max(plan_.min_mutations, plan_.max_mutations)));
  for (std::uint8_t i = 0; i < count; ++i) frame = mutate_once(frame);
  return frame;
}

can::CanFrame MutationGenerator::mutate_once(const can::CanFrame& frame) {
  const double total = plan_.weight_bit_flip + plan_.weight_byte_randomize +
                       plan_.weight_id_jitter + plan_.weight_resize;
  double pick = rng_.next_double() * total;
  if ((pick -= plan_.weight_bit_flip) < 0) return mutations::flip_random_bit(frame, rng_);
  if ((pick -= plan_.weight_byte_randomize) < 0) return mutations::randomize_byte(frame, rng_);
  if ((pick -= plan_.weight_id_jitter) < 0) {
    return mutations::jitter_id(frame, rng_, plan_.id_radius);
  }
  return mutations::resize_payload(frame, rng_);
}

}  // namespace acf::fuzzer
