#include "fuzzer/coverage.hpp"

#include <cstdio>

#include "metrics/metrics.hpp"

namespace acf::fuzzer {

void CoverageTracker::add(const can::CanFrame& frame) {
  ++frames_;
  if (frame.is_extended()) return;  // metrics are for the 11-bit space
  const std::size_t id = frame.id();
  ids_.set(id);
  const std::size_t dlc = std::min<std::size_t>(frame.length(), 8);
  id_dlc_.set(id * 9 + dlc);
  const auto payload = frame.payload();
  for (std::size_t i = 0; i < payload.size() && i < byte_values_.size(); ++i) {
    byte_values_[i].set(payload[i]);
  }
}

std::size_t CoverageTracker::byte_values_covered(std::size_t pos) const {
  return pos < byte_values_.size() ? byte_values_[pos].count() : 0;
}

double CoverageTracker::id_coverage(const FuzzConfig& config) const {
  const std::uint64_t space = config.id_space();
  if (space == 0) return 0.0;
  // Count only ids inside the config space.
  std::size_t covered = 0;
  if (!config.id_set.empty()) {
    for (std::uint32_t id : config.id_set) {
      if (id < ids_.size() && ids_.test(id)) ++covered;
    }
  } else {
    for (std::uint32_t id = config.id_min; id <= config.id_max && id < ids_.size(); ++id) {
      if (ids_.test(id)) ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(space);
}

double CoverageTracker::events_per_kiloframe() const {
  if (frames_ == 0) return 0.0;
  return static_cast<double>(oracle_events_) * 1000.0 / static_cast<double>(frames_);
}

std::string CoverageTracker::report(const FuzzConfig& config) const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "frames: %llu\n"
                "id coverage: %.1f%% of the configured space (%zu distinct ids)\n"
                "(id,dlc) cells: %zu of 18432\n"
                "byte values at position 0: %zu/256\n"
                "oracle events per kiloframe: %.3f",
                static_cast<unsigned long long>(frames_), id_coverage(config) * 100.0,
                ids_covered(), id_dlc_cells_covered(), byte_values_covered(0),
                events_per_kiloframe());
  return buf;
}

void CoverageTracker::publish_metrics(metrics::Registry& registry) const {
  registry.counter("fuzz.coverage.frames").add(frames_);
  registry.counter("fuzz.coverage.oracle_events").add(oracle_events_);
  registry.counter("fuzz.coverage.ids_max").bump_to(ids_covered());
  registry.counter("fuzz.coverage.id_dlc_cells_max").bump_to(id_dlc_cells_covered());
}

}  // namespace acf::fuzzer
