#include "fuzzer/finding.hpp"

#include <sstream>

namespace acf::fuzzer {

std::string Finding::summary() const {
  std::ostringstream out;
  out << "[" << oracle::to_string(observation.verdict) << "] t="
      << sim::format_millis(observation.time) << " ms after " << frames_sent
      << " frames: " << observation.detail;
  if (!recent_frames.empty()) {
    out << " (last frame " << recent_frames.back().frame.to_string() << ")";
  }
  return out.str();
}

}  // namespace acf::fuzzer
