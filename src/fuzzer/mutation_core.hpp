// The shared byte-mutation core: one catalogue of mutation operators used by
// every mutating layer in the repo — the self-fuzz ByteMutator (raw parser
// inputs), the campaign-side frame mutators (CanFrame payloads) and the
// feedback loop's SequenceMutator (frame sequences).  Unifying them gives a
// single determinism contract: every operator consumes a fixed, documented
// number of Rng draws for a given input shape, so a mutated stream is a pure
// function of (seed, input, operator schedule) wherever it is produced.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace acf::fuzzer::mutcore {

/// Flips one random bit of one random byte.  No-op on empty data.
/// Draws: next_below(size), next_below(8).
void flip_bit(util::Rng& rng, std::vector<std::uint8_t>& data);

/// Overwrites one random byte with a uniform value.  No-op on empty data.
/// Draws: next_below(size), next_byte.
void overwrite_byte(util::Rng& rng, std::vector<std::uint8_t>& data);

/// Inserts one uniform byte at a random position, unless at `max_len`.
/// Draws: next_below(size+1), next_byte.
void insert_byte(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len);

/// Erases one random byte.  No-op on empty data.
void erase_byte(util::Rng& rng, std::vector<std::uint8_t>& data);

/// Truncates the tail at a random point.  No-op on empty data.
void truncate(util::Rng& rng, std::vector<std::uint8_t>& data);

/// Duplicates a random block (1..16 bytes) to a random position, then clips
/// to `max_len`.  No-op on empty data.
void duplicate_block(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len);

/// Splices one dictionary token at a random position, then clips to
/// `max_len`.  `dictionary` must be non-empty.
void splice_token(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len,
                  std::span<const std::string_view> dictionary);

/// One mutation round drawn uniformly from the seven operators above — the
/// op table the selftest ByteMutator has always applied, now shared.
/// Operator order (and therefore the Rng stream) is frozen: changing it
/// would silently re-seed every committed self-fuzz corpus.
void mutate_once(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len,
                 std::span<const std::string_view> dictionary);

/// 1..4 rounds of mutate_once, AFL-havoc style.
void mutate(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len,
            std::span<const std::string_view> dictionary);

/// Fresh random input of up to `max_len` bytes: half the time uniform bytes,
/// half the time characters from `printable` (line-oriented parsers are
/// penetrated further by printable noise).  `printable` must be non-empty.
std::vector<std::uint8_t> fresh(util::Rng& rng, std::size_t max_len,
                                std::string_view printable);

}  // namespace acf::fuzzer::mutcore
