// FuzzConfig: the programmatic equivalent of the paper's fuzzer UI (Fig. 3),
// exposing exactly the Table III knobs — CAN id space, payload length,
// per-position payload byte ranges, and the transmission interval — plus a
// bit-granularity mask ("a variation on a single bit in a single message, to
// every bit in every message").
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "can/frame.hpp"
#include "sim/time.hpp"

namespace acf::fuzzer {

/// Inclusive byte-value bounds for one payload position.
struct ByteRange {
  std::uint8_t lo = 0x00;
  std::uint8_t hi = 0xFF;
  std::uint64_t count() const noexcept { return lo <= hi ? hi - lo + 1ULL : 0; }
  bool contains(std::uint8_t value) const noexcept { return value >= lo && value <= hi; }
};

struct FuzzConfig {
  // --- id selection (Table III row "CAN Id": {0,1,...,2047}) --------------
  std::uint32_t id_min = 0;
  std::uint32_t id_max = can::kMaxStandardId;
  /// When non-empty, ids are drawn from this set instead of [id_min,id_max]
  /// (targeted fuzzing "around known message ids monitored on the bus").
  std::vector<std::uint32_t> id_set;
  bool extended_ids = false;

  // --- payload length (Table III row "Payload length": {0,...,8}) ---------
  std::uint8_t dlc_min = 0;
  std::uint8_t dlc_max = 8;

  // --- payload bytes (Table III row "Payload byte") ------------------------
  std::array<ByteRange, can::kMaxClassicPayload> byte_ranges{};

  // --- rate (Table III row "Rate": vary transmission interval) ------------
  /// The paper's fuzzer has a 1 ms minimum period; so does ours by default.
  sim::Duration tx_period{std::chrono::milliseconds(1)};

  // --- mode ----------------------------------------------------------------
  /// CAN FD generation (paper §VII future work, ablation A4): dlc_max may
  /// then be up to 15 (FD DLC codes).
  bool fd_mode = false;

  /// Seed for the deterministic generator stream.
  std::uint64_t seed = 0xACF0;

  // --- helpers --------------------------------------------------------------
  /// Unrestricted classic-CAN fuzz over the whole Table III space.
  static FuzzConfig full_random(std::uint64_t seed = 0xACF0);
  /// Targeted config drawing ids only from `ids`.
  static FuzzConfig targeted(std::vector<std::uint32_t> ids, std::uint64_t seed = 0xACF0);
  /// Fuzz "around" a known id: [id-radius, id+radius] clamped to 11 bits.
  static FuzzConfig around_id(std::uint32_t id, std::uint32_t radius,
                              std::uint64_t seed = 0xACF0);

  /// Number of distinct ids this config can emit.
  std::uint64_t id_space() const noexcept;
  /// Number of distinct (id, dlc, payload) combinations — the combinatorial
  /// space the paper's §V works through (may saturate at uint64 max).
  std::uint64_t frame_space() const noexcept;
  /// Time to transmit the whole space once at tx_period (saturates).
  sim::Duration exhaust_time() const noexcept;

  /// True if `frame` could have been produced under this config (used by
  /// the containment property tests).
  bool contains(const can::CanFrame& frame) const noexcept;

  /// Human-readable summary (bench_table3 prints this).
  std::string describe() const;
};

}  // namespace acf::fuzzer
