#include "fuzzer/generator.hpp"

#include <algorithm>

namespace acf::fuzzer {

// ---------------------------------------------------------------- Random --

RandomGenerator::RandomGenerator(FuzzConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

void RandomGenerator::rewind() {
  rng_ = util::Rng(config_.seed);
  generated_ = 0;
}

std::optional<can::CanFrame> RandomGenerator::next() {
  ++generated_;
  return generate();
}

std::vector<std::uint64_t> RandomGenerator::save_state() const {
  const auto& words = rng_.state();
  return {generated_, words[0], words[1], words[2], words[3]};
}

bool RandomGenerator::restore_state(std::span<const std::uint64_t> state) {
  if (state.size() == 1) return FrameGenerator::restore_state(state);  // legacy form
  if (state.size() != 5) return false;
  generated_ = state[0];
  rng_.set_state({state[1], state[2], state[3], state[4]});
  return true;
}

can::CanFrame RandomGenerator::generate() {
  // id
  std::uint32_t id;
  if (!config_.id_set.empty()) {
    id = config_.id_set[static_cast<std::size_t>(rng_.next_below(config_.id_set.size()))];
  } else {
    id = static_cast<std::uint32_t>(rng_.next_in(config_.id_min, config_.id_max));
  }
  const auto format = config_.extended_ids ? can::IdFormat::kExtended
                                           : can::IdFormat::kStandard;

  // length
  const auto dlc = static_cast<std::uint8_t>(rng_.next_in(config_.dlc_min, config_.dlc_max));
  const std::size_t length = config_.fd_mode ? can::fd_dlc_to_length(dlc) : dlc;

  // payload bytes: positions beyond the 8 configured ranges (FD) are 0-255.
  std::array<std::uint8_t, can::kMaxFdPayload> bytes{};
  for (std::size_t i = 0; i < length; ++i) {
    const ByteRange range = i < config_.byte_ranges.size() ? config_.byte_ranges[i]
                                                           : ByteRange{};
    bytes[i] = static_cast<std::uint8_t>(rng_.next_in(range.lo, range.hi));
  }

  const std::span<const std::uint8_t> payload{bytes.data(), length};
  const auto frame = config_.fd_mode ? can::CanFrame::fd_data(id, payload, true, format)
                                     : can::CanFrame::data(id, payload, format);
  // The config invariants (id <= max for format, length valid) make this
  // always succeed; fall back to an empty frame defensively.
  return frame.value_or(can::CanFrame{});
}

can::CanFrame RandomGenerator::frame_at(const FuzzConfig& config, std::uint64_t index) {
  RandomGenerator replay(config);
  can::CanFrame frame;
  for (std::uint64_t i = 0; i <= index; ++i) {
    frame = *replay.next();
  }
  return frame;
}

// ----------------------------------------------------------------- Sweep --

SweepGenerator::SweepGenerator(FuzzConfig config) : config_(std::move(config)) { rewind(); }

void SweepGenerator::rewind() {
  id_index_ = 0;
  dlc_ = config_.dlc_min;
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    bytes_[i] = i < config_.byte_ranges.size() ? config_.byte_ranges[i].lo : 0;
  }
  done_ = config_.id_space() == 0 || config_.dlc_min > config_.dlc_max;
  primed_ = false;
  generated_ = 0;
}

std::optional<can::CanFrame> SweepGenerator::next() {
  if (done_) return std::nullopt;
  if (primed_ && !advance()) {
    done_ = true;
    return std::nullopt;
  }
  primed_ = true;
  ++generated_;

  const std::uint32_t id =
      config_.id_set.empty()
          ? config_.id_min + static_cast<std::uint32_t>(id_index_)
          : config_.id_set[id_index_];
  const std::span<const std::uint8_t> payload{bytes_.data(), dlc_};
  const auto format = config_.extended_ids ? can::IdFormat::kExtended
                                           : can::IdFormat::kStandard;
  return can::CanFrame::data(id, payload, format).value_or(can::CanFrame{});
}

bool SweepGenerator::advance() {
  // Increment payload bytes as a mixed-radix counter (byte 0 least
  // significant), then dlc, then id.
  for (std::size_t i = 0; i < dlc_; ++i) {
    const ByteRange range = i < config_.byte_ranges.size() ? config_.byte_ranges[i]
                                                           : ByteRange{};
    if (bytes_[i] < range.hi) {
      ++bytes_[i];
      return true;
    }
    bytes_[i] = range.lo;
  }
  if (dlc_ < config_.dlc_max) {
    ++dlc_;
    return true;
  }
  dlc_ = config_.dlc_min;
  ++id_index_;
  return id_index_ < config_.id_space();
}

// --------------------------------------------------------------- BitFlip --

BitFlipGenerator::BitFlipGenerator(can::CanFrame base, std::array<std::uint8_t, 8> payload_mask,
                                   bool include_id_bits)
    : base_(base) {
  if (include_id_bits) {
    for (std::uint8_t bit = 0; bit < 11; ++bit) {
      positions_.push_back({true, 0, bit});
    }
  }
  for (std::uint8_t byte = 0; byte < base_.length() && byte < 8; ++byte) {
    for (std::uint8_t bit = 0; bit < 8; ++bit) {
      if (static_cast<unsigned>(payload_mask[byte] >> bit) & 1u) {
        positions_.push_back({false, byte, bit});
      }
    }
  }
}

void BitFlipGenerator::rewind() {
  cursor_ = 0;
  generated_ = 0;
}

std::optional<can::CanFrame> BitFlipGenerator::next() {
  if (cursor_ >= positions_.size()) return std::nullopt;
  ++generated_;
  return apply(positions_[cursor_++]);
}

can::CanFrame BitFlipGenerator::apply(const BitRef& ref) const {
  if (ref.in_id) {
    const std::uint32_t id = (base_.id() ^ (1u << ref.bit)) & can::kMaxStandardId;
    return can::CanFrame::data(id, base_.payload(), base_.format()).value_or(base_);
  }
  std::vector<std::uint8_t> bytes(base_.payload().begin(), base_.payload().end());
  bytes[ref.byte] = static_cast<std::uint8_t>(bytes[ref.byte] ^ (1u << ref.bit));
  return can::CanFrame::data(base_.id(), bytes, base_.format()).value_or(base_);
}

}  // namespace acf::fuzzer
