// Frame generators: the "random bytes generator for the fuzzed CAN
// messages" at the heart of the paper's fuzzer, plus the two systematic
// strategies its UI supports — exhaustive sweep ("iterative testing") and
// bit-granular variation of a base message ("a single bit in a single
// message, to every bit in every message").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "can/frame.hpp"
#include "fuzzer/config.hpp"
#include "util/rng.hpp"

namespace acf::fuzzer {

class FrameGenerator {
 public:
  virtual ~FrameGenerator() = default;

  virtual std::string_view name() const = 0;

  /// Produces the next frame.  Returns nullopt when the strategy is
  /// exhausted (never, for random generators).
  virtual std::optional<can::CanFrame> next() = 0;

  /// Restarts the stream from the beginning (same seed => same stream).
  virtual void rewind() = 0;

  /// Opaque position state for campaign checkpointing.  The default is the
  /// frame counter alone; restore replays the stream to that point, which
  /// is valid for every deterministic generator.  Generators with cheap
  /// explicit state (RNG words) override both for O(1) restore.
  virtual std::vector<std::uint64_t> save_state() const { return {generated_}; }
  virtual bool restore_state(std::span<const std::uint64_t> state) {
    if (state.size() != 1) return false;
    rewind();
    for (std::uint64_t i = 0; i < state[0]; ++i) {
      if (!next()) return false;
    }
    return generated_ == state[0];
  }

  std::uint64_t generated() const noexcept { return generated_; }

 protected:
  std::uint64_t generated_ = 0;
};

/// Uniform random frames over the FuzzConfig space.  Deterministic in the
/// config seed; frame N of a given (config, seed) is reproducible, which is
/// what makes findings replayable.
class RandomGenerator final : public FrameGenerator {
 public:
  explicit RandomGenerator(FuzzConfig config);

  std::string_view name() const override { return "random"; }
  std::optional<can::CanFrame> next() override;
  void rewind() override;

  /// O(1) checkpointing: frame counter plus the four xoshiro state words.
  std::vector<std::uint64_t> save_state() const override;
  bool restore_state(std::span<const std::uint64_t> state) override;

  const FuzzConfig& config() const noexcept { return config_; }

  /// Regenerates frame `index` of the stream without disturbing this
  /// generator (used by finding replay).
  static can::CanFrame frame_at(const FuzzConfig& config, std::uint64_t index);

 private:
  can::CanFrame generate();

  FuzzConfig config_;
  util::Rng rng_;
};

/// Exhaustive enumeration of the configured space in lexicographic
/// (id, dlc, payload) order.  Practical only for small spaces — the
/// combinatorial-explosion lesson of the paper's §V.
class SweepGenerator final : public FrameGenerator {
 public:
  explicit SweepGenerator(FuzzConfig config);

  std::string_view name() const override { return "sweep"; }
  std::optional<can::CanFrame> next() override;
  void rewind() override;

  std::uint64_t space() const noexcept { return config_.frame_space(); }

 private:
  bool advance();

  FuzzConfig config_;
  std::size_t id_index_ = 0;       // index into id list / range
  std::uint8_t dlc_ = 0;
  std::array<std::uint8_t, can::kMaxClassicPayload> bytes_{};
  bool done_ = false;
  bool primed_ = false;
};

/// All single-bit variations of a base frame under a mutable-bit mask, in
/// position order; optionally continues with 2-bit combinations.
class BitFlipGenerator final : public FrameGenerator {
 public:
  /// `payload_mask[i]` selects which bits of payload byte i may be flipped
  /// (0xFF = all).  `include_id_bits` also walks the 11 id bits.
  BitFlipGenerator(can::CanFrame base, std::array<std::uint8_t, 8> payload_mask,
                   bool include_id_bits = false);

  std::string_view name() const override { return "bitflip"; }
  std::optional<can::CanFrame> next() override;
  void rewind() override;

  /// Number of mutable bit positions.
  std::size_t positions() const noexcept { return positions_.size(); }

 private:
  struct BitRef {
    bool in_id = false;
    std::uint8_t byte = 0;
    std::uint8_t bit = 0;
  };

  can::CanFrame apply(const BitRef& ref) const;

  can::CanFrame base_;
  std::vector<BitRef> positions_;
  std::size_t cursor_ = 0;
};

}  // namespace acf::fuzzer
