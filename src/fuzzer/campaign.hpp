// FuzzCampaign: the automation loop of the paper's fuzz-test definition —
// send fuzz at a fixed rate, monitor the target through oracles, record the
// conditions of any failure, repeat a large number of times.
//
// Hardened for endurance runs: a retry-aware transport failure policy (the
// campaign distinguishes a transient send failure from a dead transport and
// stops with StopReason::kTransportDead instead of spinning), and
// checkpoint/resume — an interrupted campaign restored from a checkpoint
// emits the byte-identical frame stream the uninterrupted run would have.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fuzzer/checkpoint.hpp"
#include "fuzzer/coverage.hpp"
#include "fuzzer/finding.hpp"
#include "fuzzer/generator.hpp"
#include "oracle/oracle.hpp"
#include "sim/scheduler.hpp"
#include "transport/transport.hpp"
#include "util/ring_buffer.hpp"

namespace acf::fuzzer {

struct CampaignConfig {
  /// Frame transmission period (the paper's fuzzer: minimum 1 ms).
  sim::Duration tx_period{std::chrono::milliseconds(1)};
  /// Wall limit in simulated time; the campaign stops when it elapses.
  sim::Duration max_duration{std::chrono::seconds(60)};
  /// Stop after this many frames (0 = unlimited).
  std::uint64_t max_frames = 0;
  /// Oracle polling interval.
  sim::Duration oracle_period{std::chrono::milliseconds(10)};
  /// Stop at the first failure-verdict observation.
  bool stop_on_failure = true;
  /// Record suspicious (non-failure) observations as findings too.
  bool record_suspicious = true;
  /// Injected frames retained per finding for reproduction.
  std::size_t finding_window = 32;
  /// Consecutive send failures tolerated before the campaign declares the
  /// transport dead (StopReason::kTransportDead).  0 = never give up — the
  /// legacy behaviour of blindly counting send_failures.  A resilient
  /// transport (transport::ResilientTransport) only fails a send once its
  /// own retries and circuit breaker have given up, so a small value here
  /// composes into "retry hard, then stop cleanly".
  std::uint32_t max_consecutive_send_failures = 0;
  /// Automatic checkpoint interval (simulated time; 0 = disabled).  Each
  /// interval the on_checkpoint callback receives a fresh checkpoint.
  sim::Duration checkpoint_period{0};
};

enum class StopReason : std::uint8_t {
  kStillRunning,
  kDurationElapsed,
  kFrameLimit,
  kGeneratorExhausted,
  kFailureDetected,
  kStoppedByUser,
  kTransportDead,
};

const char* to_string(StopReason reason) noexcept;

struct CampaignResult {
  std::uint64_t frames_sent = 0;
  std::uint64_t send_failures = 0;
  sim::Duration elapsed{0};
  StopReason reason = StopReason::kStillRunning;
  std::vector<Finding> findings;

  bool any_failure() const noexcept;
  /// First failure finding, or nullptr.
  const Finding* first_failure() const noexcept;
};

class FuzzCampaign {
 public:
  /// All references must outlive the campaign.  `oracle` may be null (pure
  /// disruption run, no monitoring).
  FuzzCampaign(sim::Scheduler& scheduler, transport::CanTransport& transport,
               FrameGenerator& generator, oracle::Oracle* oracle, CampaignConfig config);

  /// Arms the campaign events; the caller drives the scheduler.
  void start();
  void stop();  // StopReason::kStoppedByUser
  bool finished() const noexcept { return finished_; }

  /// start() + drive the scheduler until the campaign finishes.
  const CampaignResult& run();

  const CampaignResult& result() const noexcept { return result_; }
  const CampaignConfig& config() const noexcept { return config_; }

  /// Captures the campaign's resumable state.  Valid while running (from a
  /// scheduler event or the on_checkpoint hook) and after finish.
  CampaignCheckpoint checkpoint() const;

  /// Restores state from a checkpoint.  Must be called before start(); the
  /// generator is rewound to the exact stream position, counters, elapsed
  /// time and findings are re-established, and max_duration / max_frames
  /// account for the work already done.  Returns false (leaving the
  /// campaign untouched) on a generator name/state mismatch.
  bool restore(const CampaignCheckpoint& checkpoint);

  /// Invoked on every finding as it is recorded.
  void set_on_finding(std::function<void(const Finding&)> callback) {
    on_finding_ = std::move(callback);
  }

  /// Invoked after every successfully queued frame with its submit time —
  /// the ground-truth labeling hook: downstream consumers (IDS evaluation)
  /// learn exactly which bus frames the fuzzer injected.
  void set_on_frame_sent(std::function<void(const can::CanFrame&, sim::SimTime)> callback) {
    on_frame_sent_ = std::move(callback);
  }

  /// Invoked every checkpoint_period with a fresh checkpoint.
  void set_on_checkpoint(std::function<void(const CampaignCheckpoint&)> callback) {
    on_checkpoint_ = std::move(callback);
  }

  /// Optional coverage metrics (not owned; must outlive the campaign).
  void set_coverage(CoverageTracker* tracker) noexcept { coverage_ = tracker; }

 private:
  void tx_tick();
  void oracle_tick();
  void finish(StopReason reason);
  sim::Duration elapsed_now() const;

  sim::Scheduler& scheduler_;
  transport::CanTransport& transport_;
  FrameGenerator& generator_;
  oracle::Oracle* oracle_;
  CampaignConfig config_;

  CampaignResult result_;
  util::RingBuffer<trace::TimestampedFrame> recent_;
  sim::SimTime started_{0};
  sim::Duration resumed_elapsed_{0};  // sim time consumed before restore()
  sim::EventId tx_event_{};
  sim::EventId oracle_event_{};
  sim::EventId deadline_event_{};
  sim::EventId checkpoint_event_{};
  std::uint32_t consecutive_send_failures_ = 0;
  bool started_flag_ = false;
  bool finished_ = false;
  std::function<void(const Finding&)> on_finding_;
  std::function<void(const CampaignCheckpoint&)> on_checkpoint_;
  std::function<void(const can::CanFrame&, sim::SimTime)> on_frame_sent_;
  CoverageTracker* coverage_ = nullptr;
};

}  // namespace acf::fuzzer
