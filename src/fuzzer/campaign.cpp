#include "fuzzer/campaign.hpp"

#include <algorithm>

namespace acf::fuzzer {

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kStillRunning: return "still-running";
    case StopReason::kDurationElapsed: return "duration-elapsed";
    case StopReason::kFrameLimit: return "frame-limit";
    case StopReason::kGeneratorExhausted: return "generator-exhausted";
    case StopReason::kFailureDetected: return "failure-detected";
    case StopReason::kStoppedByUser: return "stopped-by-user";
    case StopReason::kTransportDead: return "transport-dead";
  }
  return "?";
}

bool CampaignResult::any_failure() const noexcept { return first_failure() != nullptr; }

const Finding* CampaignResult::first_failure() const noexcept {
  const auto it = std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
    return f.observation.verdict == oracle::Verdict::kFailure;
  });
  return it == findings.end() ? nullptr : &*it;
}

FuzzCampaign::FuzzCampaign(sim::Scheduler& scheduler, transport::CanTransport& transport,
                           FrameGenerator& generator, oracle::Oracle* oracle,
                           CampaignConfig config)
    : scheduler_(scheduler), transport_(transport), generator_(generator), oracle_(oracle),
      config_(config), recent_(config.finding_window) {}

sim::Duration FuzzCampaign::elapsed_now() const {
  if (finished_) return result_.elapsed;  // frozen at finish time
  return resumed_elapsed_ + (started_flag_ ? scheduler_.now() - started_ : sim::Duration{0});
}

void FuzzCampaign::start() {
  if (started_flag_) return;
  started_flag_ = true;
  started_ = scheduler_.now();
  tx_event_ = scheduler_.schedule_every(config_.tx_period, [this] { tx_tick(); });
  if (oracle_ != nullptr) {
    oracle_event_ = scheduler_.schedule_every(config_.oracle_period, [this] { oracle_tick(); });
  }
  // A resumed campaign only runs the remainder of its duration budget.
  const sim::Duration remaining =
      config_.max_duration > resumed_elapsed_
          ? config_.max_duration - resumed_elapsed_
          : sim::Duration{0};
  deadline_event_ = scheduler_.schedule_after(remaining,
                                              [this] { finish(StopReason::kDurationElapsed); });
  if (config_.checkpoint_period.count() > 0 && on_checkpoint_) {
    checkpoint_event_ = scheduler_.schedule_every(config_.checkpoint_period, [this] {
      if (!finished_) on_checkpoint_(checkpoint());
    });
  }
}

void FuzzCampaign::stop() { finish(StopReason::kStoppedByUser); }

const CampaignResult& FuzzCampaign::run() {
  start();
  // The deadline event guarantees termination; run a generous horizon.
  scheduler_.run_until_condition([this] { return finished_; },
                                 started_ + config_.max_duration + std::chrono::seconds(1));
  return result_;
}

CampaignCheckpoint FuzzCampaign::checkpoint() const {
  CampaignCheckpoint checkpoint;
  checkpoint.frames_sent = result_.frames_sent;
  checkpoint.send_failures = result_.send_failures;
  checkpoint.elapsed = elapsed_now();
  checkpoint.generator_name = std::string(generator_.name());
  checkpoint.generator_state = generator_.save_state();
  checkpoint.findings = result_.findings;
  checkpoint.recent_frames = recent_.snapshot();
  return checkpoint;
}

bool FuzzCampaign::restore(const CampaignCheckpoint& checkpoint) {
  if (started_flag_) return false;
  if (checkpoint.generator_name != std::string(generator_.name())) return false;
  if (!generator_.restore_state(checkpoint.generator_state)) return false;
  result_.frames_sent = checkpoint.frames_sent;
  result_.send_failures = checkpoint.send_failures;
  result_.findings = checkpoint.findings;
  for (const auto& entry : checkpoint.recent_frames) recent_.push(entry);
  resumed_elapsed_ = checkpoint.elapsed;
  return true;
}

void FuzzCampaign::tx_tick() {
  if (finished_) return;
  const auto frame = generator_.next();
  if (!frame) {
    finish(StopReason::kGeneratorExhausted);
    return;
  }
  if (transport_.send(*frame)) {
    ++result_.frames_sent;
    consecutive_send_failures_ = 0;
    if (coverage_ != nullptr) coverage_->add(*frame);
    if (on_frame_sent_) on_frame_sent_(*frame, scheduler_.now());
  } else {
    ++result_.send_failures;
    ++consecutive_send_failures_;
    if (config_.max_consecutive_send_failures != 0 &&
        consecutive_send_failures_ >= config_.max_consecutive_send_failures) {
      finish(StopReason::kTransportDead);
      return;
    }
  }
  recent_.push({*frame, scheduler_.now()});
  if (config_.max_frames != 0 && result_.frames_sent >= config_.max_frames) {
    finish(StopReason::kFrameLimit);
  }
}

void FuzzCampaign::oracle_tick() {
  if (finished_) return;
  const auto observation = oracle_->poll(scheduler_.now());
  if (!observation) return;
  const bool is_failure = observation->verdict == oracle::Verdict::kFailure;
  if (!is_failure && !config_.record_suspicious) return;

  if (coverage_ != nullptr) coverage_->add_oracle_event();
  Finding finding;
  finding.observation = *observation;
  finding.frames_sent = result_.frames_sent;
  finding.recent_frames = recent_.snapshot();
  finding.generator = std::string(generator_.name());
  result_.findings.push_back(finding);
  if (on_finding_) on_finding_(result_.findings.back());

  if (is_failure && config_.stop_on_failure) finish(StopReason::kFailureDetected);
}

void FuzzCampaign::finish(StopReason reason) {
  if (finished_) return;
  result_.elapsed = elapsed_now();  // before the flag freezes the clock
  finished_ = true;
  result_.reason = reason;
  scheduler_.cancel(tx_event_);
  scheduler_.cancel(oracle_event_);
  scheduler_.cancel(deadline_event_);
  scheduler_.cancel(checkpoint_event_);
}

}  // namespace acf::fuzzer
