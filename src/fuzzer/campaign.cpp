#include "fuzzer/campaign.hpp"

#include <algorithm>

namespace acf::fuzzer {

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kStillRunning: return "still-running";
    case StopReason::kDurationElapsed: return "duration-elapsed";
    case StopReason::kFrameLimit: return "frame-limit";
    case StopReason::kGeneratorExhausted: return "generator-exhausted";
    case StopReason::kFailureDetected: return "failure-detected";
    case StopReason::kStoppedByUser: return "stopped-by-user";
  }
  return "?";
}

bool CampaignResult::any_failure() const noexcept { return first_failure() != nullptr; }

const Finding* CampaignResult::first_failure() const noexcept {
  const auto it = std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
    return f.observation.verdict == oracle::Verdict::kFailure;
  });
  return it == findings.end() ? nullptr : &*it;
}

FuzzCampaign::FuzzCampaign(sim::Scheduler& scheduler, transport::CanTransport& transport,
                           FrameGenerator& generator, oracle::Oracle* oracle,
                           CampaignConfig config)
    : scheduler_(scheduler), transport_(transport), generator_(generator), oracle_(oracle),
      config_(config), recent_(config.finding_window) {}

void FuzzCampaign::start() {
  if (started_flag_) return;
  started_flag_ = true;
  started_ = scheduler_.now();
  tx_event_ = scheduler_.schedule_every(config_.tx_period, [this] { tx_tick(); });
  if (oracle_ != nullptr) {
    oracle_event_ = scheduler_.schedule_every(config_.oracle_period, [this] { oracle_tick(); });
  }
  deadline_event_ = scheduler_.schedule_after(config_.max_duration,
                                              [this] { finish(StopReason::kDurationElapsed); });
}

void FuzzCampaign::stop() { finish(StopReason::kStoppedByUser); }

const CampaignResult& FuzzCampaign::run() {
  start();
  // The deadline event guarantees termination; run a generous horizon.
  scheduler_.run_until_condition([this] { return finished_; },
                                 started_ + config_.max_duration + std::chrono::seconds(1));
  return result_;
}

void FuzzCampaign::tx_tick() {
  if (finished_) return;
  const auto frame = generator_.next();
  if (!frame) {
    finish(StopReason::kGeneratorExhausted);
    return;
  }
  if (transport_.send(*frame)) {
    ++result_.frames_sent;
    if (coverage_ != nullptr) coverage_->add(*frame);
  } else {
    ++result_.send_failures;
  }
  recent_.push({*frame, scheduler_.now()});
  if (config_.max_frames != 0 && result_.frames_sent >= config_.max_frames) {
    finish(StopReason::kFrameLimit);
  }
}

void FuzzCampaign::oracle_tick() {
  if (finished_) return;
  const auto observation = oracle_->poll(scheduler_.now());
  if (!observation) return;
  const bool is_failure = observation->verdict == oracle::Verdict::kFailure;
  if (!is_failure && !config_.record_suspicious) return;

  if (coverage_ != nullptr) coverage_->add_oracle_event();
  Finding finding;
  finding.observation = *observation;
  finding.frames_sent = result_.frames_sent;
  finding.recent_frames = recent_.snapshot();
  finding.generator = std::string(generator_.name());
  result_.findings.push_back(finding);
  if (on_finding_) on_finding_(result_.findings.back());

  if (is_failure && config_.stop_on_failure) finish(StopReason::kFailureDetected);
}

void FuzzCampaign::finish(StopReason reason) {
  if (finished_) return;
  finished_ = true;
  result_.reason = reason;
  result_.elapsed = scheduler_.now() - started_;
  scheduler_.cancel(tx_event_);
  scheduler_.cancel(oracle_event_);
  scheduler_.cancel(deadline_event_);
}

}  // namespace acf::fuzzer
