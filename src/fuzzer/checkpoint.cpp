#include "fuzzer/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/hex.hpp"

namespace acf::fuzzer {

namespace {

constexpr const char* kMagic = "ACF-CHECKPOINT";

// Bounds on counts a hostile stream can demand before any content has
// validated them.  Generator states are a handful of words (xoshiro uses 4);
// findings and frame windows may legitimately be large, so their declared
// counts only cap the up-front reserve() — the vectors still grow naturally
// as real content parses, keeping memory proportional to input size.
constexpr std::size_t kMaxStateWords = 1024;
constexpr std::size_t kMaxAdvanceReserve = 4096;

std::string hex_or_dash(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return "-";
  return util::hex_bytes(bytes, '\0');  // no separator
}

// Generator names are written as a single token; whitespace and other
// non-printable bytes are percent-escaped so a hostile or merely unusual
// name ("mutation v2") cannot desynchronise the line-oriented stream.
std::string escape_name(const std::string& name) {
  if (name.empty()) return "-";
  std::string out;
  out.reserve(name.size());
  for (const char raw : name) {
    const auto c = static_cast<unsigned char>(raw);
    if (c <= 0x20 || c == 0x7F || c == '%') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out += buf;
    } else {
      out.push_back(raw);
    }
  }
  if (out == "-") return "%2D";  // a literal "-" must not read back as empty
  return out;
}

std::optional<std::string> unescape_name(const std::string& token) {
  if (token == "-") return std::string{};
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out.push_back(token[i]);
      continue;
    }
    if (i + 2 >= token.size()) return std::nullopt;
    const auto byte = util::parse_hex_byte(std::string_view(token).substr(i + 1, 2));
    if (!byte) return std::nullopt;
    out.push_back(static_cast<char>(*byte));
    i += 2;
  }
  return out;
}

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return {text.begin(), text.end()};
}

void write_frame(std::ostream& out, const trace::TimestampedFrame& entry) {
  const can::CanFrame& frame = entry.frame;
  out << "frame " << entry.time.count() << ' ';
  if (frame.is_fd()) {
    out << "F " << (frame.is_extended() ? 'E' : 'S') << ' ' << frame.id() << ' '
        << (frame.brs() ? 1 : 0) << ' ' << hex_or_dash(frame.payload());
  } else if (frame.is_remote()) {
    out << "R " << (frame.is_extended() ? 'E' : 'S') << ' ' << frame.id() << ' '
        << static_cast<unsigned>(frame.dlc());
  } else {
    out << "D " << (frame.is_extended() ? 'E' : 'S') << ' ' << frame.id() << ' '
        << hex_or_dash(frame.payload());
  }
  out << '\n';
}

std::optional<trace::TimestampedFrame> read_frame(std::istream& in) {
  std::int64_t time_ns = 0;
  char kind = 0;
  char format_code = 0;
  std::uint32_t id = 0;
  if (!(in >> time_ns >> kind >> format_code >> id)) return std::nullopt;
  const auto format = format_code == 'E' ? can::IdFormat::kExtended
                                         : can::IdFormat::kStandard;
  std::optional<can::CanFrame> frame;
  if (kind == 'R') {
    unsigned dlc = 0;
    // Validate before narrowing: 260 must not silently become 4.
    if (!(in >> dlc) || dlc > can::kMaxClassicPayload) return std::nullopt;
    frame = can::CanFrame::remote(id, static_cast<std::uint8_t>(dlc), format);
  } else {
    int brs = 0;
    if (kind == 'F' && !(in >> brs)) return std::nullopt;
    std::string payload_hex;
    if (!(in >> payload_hex)) return std::nullopt;
    std::vector<std::uint8_t> payload;
    if (payload_hex != "-") {
      const auto parsed = util::parse_hex_bytes(payload_hex);
      if (!parsed) return std::nullopt;
      payload = *parsed;
    }
    frame = kind == 'F' ? can::CanFrame::fd_data(id, payload, brs != 0, format)
                        : can::CanFrame::data(id, payload, format);
  }
  if (!frame) return std::nullopt;
  return trace::TimestampedFrame{*frame, sim::SimTime{time_ns}};
}

}  // namespace

void CampaignCheckpoint::serialize(std::ostream& out) const {
  out << kMagic << ' ' << kVersion << '\n';
  out << "frames_sent " << frames_sent << '\n';
  out << "send_failures " << send_failures << '\n';
  out << "elapsed_ns " << elapsed.count() << '\n';
  out << "generator " << escape_name(generator_name) << '\n';
  out << "state " << generator_state.size();
  for (const std::uint64_t word : generator_state) out << ' ' << word;
  out << '\n';
  out << "findings " << findings.size() << '\n';
  for (const Finding& finding : findings) {
    out << "verdict " << static_cast<int>(finding.observation.verdict) << '\n';
    out << "time_ns " << finding.observation.time.count() << '\n';
    out << "detail " << hex_or_dash(bytes_of(finding.observation.detail)) << '\n';
    out << "at_frame " << finding.frames_sent << '\n';
    out << "seed " << finding.seed << '\n';
    out << "gen " << escape_name(finding.generator) << '\n';
    out << "recent " << finding.recent_frames.size() << '\n';
    for (const auto& entry : finding.recent_frames) write_frame(out, entry);
  }
  out << "window " << recent_frames.size() << '\n';
  for (const auto& entry : recent_frames) write_frame(out, entry);
  out << "end\n";
}

std::optional<CampaignCheckpoint> CampaignCheckpoint::deserialize(std::istream& in) {
  std::string magic;
  std::uint32_t version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion) {
    return std::nullopt;
  }
  CampaignCheckpoint checkpoint;
  std::string key;
  std::int64_t elapsed_ns = 0;
  std::size_t state_words = 0;
  std::size_t finding_count = 0;
  if (!(in >> key >> checkpoint.frames_sent) || key != "frames_sent") return std::nullopt;
  if (!(in >> key >> checkpoint.send_failures) || key != "send_failures") return std::nullopt;
  if (!(in >> key >> elapsed_ns) || key != "elapsed_ns") return std::nullopt;
  checkpoint.elapsed = sim::Duration{elapsed_ns};
  std::string name_token;
  if (!(in >> key >> name_token) || key != "generator") return std::nullopt;
  if (auto name = unescape_name(name_token)) {
    checkpoint.generator_name = std::move(*name);
  } else {
    return std::nullopt;
  }
  if (!(in >> key >> state_words) || key != "state") return std::nullopt;
  if (state_words > kMaxStateWords) return std::nullopt;
  checkpoint.generator_state.resize(state_words);
  for (std::uint64_t& word : checkpoint.generator_state) {
    if (!(in >> word)) return std::nullopt;
  }
  if (!(in >> key >> finding_count) || key != "findings") return std::nullopt;
  checkpoint.findings.reserve(std::min(finding_count, kMaxAdvanceReserve));
  for (std::size_t i = 0; i < finding_count; ++i) {
    Finding finding;
    int verdict = 0;
    std::int64_t time_ns = 0;
    std::string detail_hex;
    std::size_t recent_count = 0;
    if (!(in >> key >> verdict) || key != "verdict") return std::nullopt;
    if (verdict < 0 || verdict > static_cast<int>(oracle::Verdict::kFailure)) {
      return std::nullopt;
    }
    finding.observation.verdict = static_cast<oracle::Verdict>(verdict);
    if (!(in >> key >> time_ns) || key != "time_ns") return std::nullopt;
    finding.observation.time = sim::SimTime{time_ns};
    if (!(in >> key >> detail_hex) || key != "detail") return std::nullopt;
    if (detail_hex != "-") {
      const auto bytes = util::parse_hex_bytes(detail_hex);
      if (!bytes) return std::nullopt;
      finding.observation.detail.assign(bytes->begin(), bytes->end());
    }
    if (!(in >> key >> finding.frames_sent) || key != "at_frame") return std::nullopt;
    if (!(in >> key >> finding.seed) || key != "seed") return std::nullopt;
    std::string gen_token;
    if (!(in >> key >> gen_token) || key != "gen") return std::nullopt;
    if (auto gen = unescape_name(gen_token)) {
      finding.generator = std::move(*gen);
    } else {
      return std::nullopt;
    }
    if (!(in >> key >> recent_count) || key != "recent") return std::nullopt;
    finding.recent_frames.reserve(std::min(recent_count, kMaxAdvanceReserve));
    for (std::size_t f = 0; f < recent_count; ++f) {
      if (!(in >> key) || key != "frame") return std::nullopt;
      const auto entry = read_frame(in);
      if (!entry) return std::nullopt;
      finding.recent_frames.push_back(*entry);
    }
    checkpoint.findings.push_back(std::move(finding));
  }
  std::size_t window_count = 0;
  if (!(in >> key >> window_count) || key != "window") return std::nullopt;
  checkpoint.recent_frames.reserve(std::min(window_count, kMaxAdvanceReserve));
  for (std::size_t f = 0; f < window_count; ++f) {
    if (!(in >> key) || key != "frame") return std::nullopt;
    const auto entry = read_frame(in);
    if (!entry) return std::nullopt;
    checkpoint.recent_frames.push_back(*entry);
  }
  if (!(in >> key) || key != "end") return std::nullopt;
  return checkpoint;
}

std::string CampaignCheckpoint::to_string() const {
  std::ostringstream out;
  serialize(out);
  return out.str();
}

std::optional<CampaignCheckpoint> CampaignCheckpoint::from_string(const std::string& text) {
  std::istringstream in(text);
  return deserialize(in);
}

bool CampaignCheckpoint::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  serialize(out);
  return static_cast<bool>(out);
}

std::optional<CampaignCheckpoint> CampaignCheckpoint::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return deserialize(in);
}

}  // namespace acf::fuzzer
