#include "fuzzer/smart_generator.hpp"

#include <algorithm>
#include <limits>

namespace acf::fuzzer {

namespace {
constexpr std::uint8_t kBoundaryBytes[] = {0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF};
}

// -------------------------------------------------------------- boundary --

BoundaryGenerator::BoundaryGenerator(FuzzConfig config, BoundaryPlan plan)
    : config_(std::move(config)), plan_(std::move(plan)), rng_(plan_.seed) {
  pool_.assign(std::begin(kBoundaryBytes), std::end(kBoundaryBytes));
  pool_.insert(pool_.end(), plan_.dictionary.begin(), plan_.dictionary.end());
}

void BoundaryGenerator::rewind() {
  rng_ = util::Rng(plan_.seed);
  generated_ = 0;
}

std::uint8_t BoundaryGenerator::draw_byte(const ByteRange& range) {
  if (rng_.next_bool(plan_.boundary_bias)) {
    // Try a few pool draws for one inside the configured range; fall back
    // to uniform if the range excludes the whole pool.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint8_t candidate = rng_.pick(pool_);
      if (range.contains(candidate)) return candidate;
    }
  }
  return static_cast<std::uint8_t>(rng_.next_in(range.lo, range.hi));
}

std::optional<can::CanFrame> BoundaryGenerator::next() {
  ++generated_;
  std::uint32_t id;
  if (!config_.id_set.empty()) {
    id = config_.id_set[static_cast<std::size_t>(rng_.next_below(config_.id_set.size()))];
  } else {
    id = static_cast<std::uint32_t>(rng_.next_in(config_.id_min, config_.id_max));
  }
  const auto dlc = static_cast<std::uint8_t>(rng_.next_in(config_.dlc_min, config_.dlc_max));
  std::array<std::uint8_t, can::kMaxClassicPayload> bytes{};
  for (std::uint8_t i = 0; i < dlc && i < bytes.size(); ++i) {
    bytes[i] = draw_byte(config_.byte_ranges[i]);
  }
  return can::CanFrame::data(id, {bytes.data(), dlc}).value_or(can::CanFrame{});
}

// -------------------------------------------------------------- feedback --

FeedbackGenerator::FeedbackGenerator(FuzzConfig config, FeedbackPlan plan)
    : config_(std::move(config)), plan_(plan), rng_(plan.seed) {
  weights_.assign(static_cast<std::size_t>(config_.id_space()), 1.0);
  total_weight_ = static_cast<double>(weights_.size());
}

void FeedbackGenerator::rewind() {
  rng_ = util::Rng(plan_.seed);
  std::fill(weights_.begin(), weights_.end(), 1.0);
  total_weight_ = static_cast<double>(weights_.size());
  generated_ = 0;
}

std::uint32_t FeedbackGenerator::index_to_id(std::size_t index) const {
  if (!config_.id_set.empty()) return config_.id_set[index];
  return config_.id_min + static_cast<std::uint32_t>(index);
}

std::size_t FeedbackGenerator::id_to_index(std::uint32_t id) const {
  if (!config_.id_set.empty()) {
    const auto it = std::find(config_.id_set.begin(), config_.id_set.end(), id);
    return it == config_.id_set.end()
               ? std::numeric_limits<std::size_t>::max()
               : static_cast<std::size_t>(it - config_.id_set.begin());
  }
  if (id < config_.id_min || id > config_.id_max) {
    return std::numeric_limits<std::size_t>::max();
  }
  return id - config_.id_min;
}

void FeedbackGenerator::reward(std::uint32_t id) {
  const std::size_t index = id_to_index(id);
  if (index >= weights_.size()) return;
  const double boosted = std::min(weights_[index] * plan_.reward_factor, plan_.max_weight);
  total_weight_ += boosted - weights_[index];
  weights_[index] = boosted;
}

double FeedbackGenerator::weight_of(std::uint32_t id) const {
  const std::size_t index = id_to_index(id);
  return index < weights_.size() ? weights_[index] : 0.0;
}

std::vector<std::uint32_t> FeedbackGenerator::hot_ids(std::size_t limit) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (weights_[i] > 1.0) indices.push_back(i);
  }
  std::sort(indices.begin(), indices.end(),
            [this](std::size_t a, std::size_t b) { return weights_[a] > weights_[b]; });
  if (indices.size() > limit) indices.resize(limit);
  std::vector<std::uint32_t> out;
  out.reserve(indices.size());
  for (std::size_t index : indices) out.push_back(index_to_id(index));
  return out;
}

std::uint32_t FeedbackGenerator::draw_id() {
  if (weights_.empty()) return config_.id_min;
  if (rng_.next_bool(plan_.explore_fraction)) {
    return index_to_id(static_cast<std::size_t>(rng_.next_below(weights_.size())));
  }
  double target = rng_.next_double() * total_weight_;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    target -= weights_[i];
    if (target <= 0.0) return index_to_id(i);
  }
  return index_to_id(weights_.size() - 1);
}

std::optional<can::CanFrame> FeedbackGenerator::next() {
  ++generated_;
  const std::uint32_t id = draw_id();
  const auto dlc = static_cast<std::uint8_t>(rng_.next_in(config_.dlc_min, config_.dlc_max));
  std::array<std::uint8_t, can::kMaxClassicPayload> bytes{};
  for (std::uint8_t i = 0; i < dlc && i < bytes.size(); ++i) {
    const ByteRange& range = config_.byte_ranges[i];
    bytes[i] = static_cast<std::uint8_t>(rng_.next_in(range.lo, range.hi));
  }
  return can::CanFrame::data(id, {bytes.data(), dlc}).value_or(can::CanFrame{});
}

}  // namespace acf::fuzzer
