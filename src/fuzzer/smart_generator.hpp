// Smarter generation strategies on top of the plain uniform fuzzer:
//
//  - BoundaryGenerator: classic boundary-value fuzzing.  Payload bytes are
//    drawn mostly from the values that break narrow parsers (0x00, 0x01,
//    0x7F, 0x80, 0xFE, 0xFF) plus a caller-supplied dictionary (e.g. known
//    command bytes harvested from a capture) — the "informed from the
//    design" approach of the paper's Table I.
//
//  - FeedbackGenerator: adaptive id scheduling.  Ids that coincided with
//    oracle events get geometrically more weight, so the campaign converges
//    onto reactive message ids — a lightweight answer to the combinatorial
//    explosion of §V without requiring a DBC.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzzer/generator.hpp"

namespace acf::fuzzer {

struct BoundaryPlan {
  /// Probability a byte comes from the boundary set rather than uniform.
  double boundary_bias = 0.7;
  /// Extra interesting bytes (e.g. harvested command codes).
  std::vector<std::uint8_t> dictionary;
  std::uint64_t seed = 0xB0DD;
};

class BoundaryGenerator final : public FrameGenerator {
 public:
  BoundaryGenerator(FuzzConfig config, BoundaryPlan plan = {});

  std::string_view name() const override { return "boundary"; }
  std::optional<can::CanFrame> next() override;
  void rewind() override;

 private:
  std::uint8_t draw_byte(const ByteRange& range);

  FuzzConfig config_;
  BoundaryPlan plan_;
  std::vector<std::uint8_t> pool_;  // boundary set + dictionary
  util::Rng rng_;
};

struct FeedbackPlan {
  /// Weight multiplier applied to an id on reward (clamped to max_weight).
  double reward_factor = 8.0;
  double max_weight = 512.0;
  /// Exploration floor: fraction of frames that ignore the weights.
  double explore_fraction = 0.25;
  std::uint64_t seed = 0xFEED;
};

/// Wraps the uniform generator; the campaign owner calls reward() with the
/// ids in flight when an oracle event landed.
class FeedbackGenerator final : public FrameGenerator {
 public:
  FeedbackGenerator(FuzzConfig config, FeedbackPlan plan = {});

  std::string_view name() const override { return "feedback"; }
  std::optional<can::CanFrame> next() override;
  void rewind() override;

  /// Boosts the weight of `id` (call for the ids recently transmitted when
  /// an oracle observation fired).
  void reward(std::uint32_t id);

  double weight_of(std::uint32_t id) const;
  /// Ids whose weight has been boosted at least once, hottest first.
  std::vector<std::uint32_t> hot_ids(std::size_t limit = 8) const;

 private:
  std::uint32_t draw_id();

  FuzzConfig config_;
  FeedbackPlan plan_;
  util::Rng rng_;
  std::vector<double> weights_;  // per id in the config space
  double total_weight_ = 0.0;

  std::uint32_t index_to_id(std::size_t index) const;
  std::size_t id_to_index(std::uint32_t id) const;  // SIZE_MAX if outside
};

}  // namespace acf::fuzzer
