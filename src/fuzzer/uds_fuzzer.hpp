// Protocol-aware diagnostic fuzzing: the approach of Bayer & Ptok ("Don't
// Fuss about Fuzzing: Fuzzing In-Vehicular Networks", paper ref [13]) —
// instead of raw random frames, speak well-formed ISO-TP and explore the
// UDS service space: service discovery, sub-function sweeps, DID discovery
// and randomised request bodies, classifying every response.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "transport/transport.hpp"
#include "uds/uds_client.hpp"
#include "util/rng.hpp"

namespace acf::fuzzer {

struct UdsServiceInfo {
  std::uint8_t sid = 0;
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  std::uint64_t silent = 0;
  std::map<std::uint8_t, std::uint64_t> nrcs;  // NRC -> count

  /// A service "exists" if the ECU ever answered it (positively or with any
  /// NRC other than serviceNotSupported).
  bool exists() const noexcept;
};

struct UdsFuzzReport {
  std::vector<UdsServiceInfo> services;       // indexed findings per SID probed
  std::vector<std::uint16_t> readable_dids;   // DIDs answering 0x22 positively
  std::vector<std::string> anomalies;         // suspicious behaviours
  std::uint64_t requests_sent = 0;

  std::vector<std::uint8_t> discovered_sids() const;
};

/// Synchronous (simulated-clock) UDS fuzzer against one ECU endpoint.
class UdsFuzzer {
 public:
  /// `transport`'s rx callback is taken over by the fuzzer.
  UdsFuzzer(sim::Scheduler& scheduler, transport::CanTransport& transport,
            std::uint32_t request_id, std::uint32_t response_id, std::uint64_t seed = 0xDD5);

  /// Probes every SID in [0x00, 0xBF] with a minimal and a sub-function
  /// request; classifies responses.
  void scan_services(UdsFuzzReport& report);

  /// Sweeps ReadDataByIdentifier over [first, last].
  void discover_dids(UdsFuzzReport& report, std::uint16_t first = 0xF180,
                     std::uint16_t last = 0xF1A0);

  /// Sends `count` structurally random requests (random SID, random body up
  /// to 16 bytes) and flags anomalies: positive responses to garbage, or
  /// responses that are not valid UDS at all.
  void random_fuzz(UdsFuzzReport& report, std::uint32_t count = 500);

  /// Full campaign: scan + DID sweep + random fuzz.
  UdsFuzzReport run();

 private:
  /// Sends one request and waits for the response window; returns the
  /// response payload or empty on silence.
  std::vector<std::uint8_t> transact(std::vector<std::uint8_t> request);
  void classify(UdsServiceInfo& info, const std::vector<std::uint8_t>& response);

  sim::Scheduler& scheduler_;
  uds::UdsClient client_;
  util::Rng rng_;
  std::uint64_t requests_ = 0;
  /// Response wait: generous vs the server's P2 (50 ms).
  sim::Duration response_window_{std::chrono::milliseconds(100)};
};

}  // namespace acf::fuzzer
