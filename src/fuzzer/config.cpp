#include "fuzzer/config.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace acf::fuzzer {

namespace {
constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

/// a*b with saturation.
std::uint64_t mul_sat(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

std::uint64_t add_sat(std::uint64_t a, std::uint64_t b) noexcept {
  return (a > kSaturated - b) ? kSaturated : a + b;
}

/// 256^n with saturation (n <= 8 fits: 256^8 = 2^64 exactly overflows; treat
/// n == 8 as saturated only if the true value exceeds uint64 max — 2^64 - 1
/// < 256^8, so n == 8 saturates).
std::uint64_t pow_bytes(const std::array<ByteRange, can::kMaxClassicPayload>& ranges,
                        std::size_t n) noexcept {
  std::uint64_t product = 1;
  for (std::size_t i = 0; i < n && i < ranges.size(); ++i) {
    product = mul_sat(product, ranges[i].count());
  }
  return product;
}

}  // namespace

FuzzConfig FuzzConfig::full_random(std::uint64_t seed) {
  FuzzConfig config;
  config.seed = seed;
  return config;
}

FuzzConfig FuzzConfig::targeted(std::vector<std::uint32_t> ids, std::uint64_t seed) {
  FuzzConfig config;
  config.id_set = std::move(ids);
  config.seed = seed;
  return config;
}

FuzzConfig FuzzConfig::around_id(std::uint32_t id, std::uint32_t radius, std::uint64_t seed) {
  FuzzConfig config;
  config.id_min = id > radius ? id - radius : 0;
  config.id_max = std::min(id + radius, can::kMaxStandardId);
  config.seed = seed;
  return config;
}

std::uint64_t FuzzConfig::id_space() const noexcept {
  if (!id_set.empty()) return id_set.size();
  if (id_min > id_max) return 0;
  return static_cast<std::uint64_t>(id_max) - id_min + 1;
}

std::uint64_t FuzzConfig::frame_space() const noexcept {
  std::uint64_t payload_combinations = 0;
  for (std::uint8_t dlc = dlc_min; dlc <= dlc_max && dlc <= can::kMaxClassicPayload; ++dlc) {
    payload_combinations = add_sat(payload_combinations, pow_bytes(byte_ranges, dlc));
  }
  return mul_sat(id_space(), payload_combinations);
}

sim::Duration FuzzConfig::exhaust_time() const noexcept {
  const std::uint64_t space = frame_space();
  const auto period_ns = static_cast<std::uint64_t>(tx_period.count());
  if (space == kSaturated || period_ns > kSaturated / std::max<std::uint64_t>(space, 1)) {
    return sim::Duration{std::numeric_limits<std::int64_t>::max()};
  }
  return sim::Duration{static_cast<std::int64_t>(space * period_ns)};
}

bool FuzzConfig::contains(const can::CanFrame& frame) const noexcept {
  if (frame.is_fd() != fd_mode) return false;
  if (!id_set.empty()) {
    if (std::find(id_set.begin(), id_set.end(), frame.id()) == id_set.end()) return false;
  } else if (frame.id() < id_min || frame.id() > id_max) {
    return false;
  }
  if (frame.dlc() < dlc_min || frame.dlc() > dlc_max) return false;
  const auto payload = frame.payload();
  for (std::size_t i = 0; i < payload.size() && i < byte_ranges.size(); ++i) {
    if (!byte_ranges[i].contains(payload[i])) return false;
  }
  return true;
}

std::string FuzzConfig::describe() const {
  std::ostringstream out;
  out << "ids: ";
  if (!id_set.empty()) {
    out << id_set.size() << " explicit ids";
  } else {
    out << "[" << id_min << ", " << id_max << "]";
  }
  out << " | dlc: [" << static_cast<unsigned>(dlc_min) << ", "
      << static_cast<unsigned>(dlc_max) << "]";
  bool restricted = false;
  for (const auto& range : byte_ranges) {
    if (range.lo != 0 || range.hi != 0xFF) restricted = true;
  }
  out << " | bytes: " << (restricted ? "restricted" : "0x00-0xFF");
  out << " | period: " << sim::to_millis(tx_period) << " ms";
  if (fd_mode) out << " | CAN FD";
  return out.str();
}

}  // namespace acf::fuzzer
