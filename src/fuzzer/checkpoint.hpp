// Campaign checkpointing: the paper's headline experiments are hours-long
// endurance runs, and a harness that loses all state on interruption cannot
// scale to them.  A checkpoint captures everything the campaign needs to
// resume deterministically — generator position (RNG state), frame counter,
// elapsed simulated time and the findings so far — in a versioned,
// line-oriented text file.  A resumed campaign emits the byte-identical
// frame stream the uninterrupted run would have.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fuzzer/finding.hpp"
#include "sim/time.hpp"

namespace acf::fuzzer {

struct CampaignCheckpoint {
  /// Bumped whenever the serialized layout changes; loaders reject files
  /// from a different major version instead of misreading them.
  /// v2: generator names are percent-escaped single tokens.
  static constexpr std::uint32_t kVersion = 2;

  std::uint64_t frames_sent = 0;
  std::uint64_t send_failures = 0;
  sim::Duration elapsed{0};
  /// Name of the generator the state belongs to; restore refuses a
  /// mismatched generator rather than silently diverging.
  std::string generator_name;
  std::vector<std::uint64_t> generator_state;
  std::vector<Finding> findings;
  /// The campaign's bounded window of recently injected frames, so a
  /// finding recorded just after resume carries the same reproduction
  /// window it would have in the uninterrupted run.
  std::vector<trace::TimestampedFrame> recent_frames;

  void serialize(std::ostream& out) const;
  static std::optional<CampaignCheckpoint> deserialize(std::istream& in);

  std::string to_string() const;
  static std::optional<CampaignCheckpoint> from_string(const std::string& text);

  /// File convenience wrappers; save writes atomically enough for a
  /// single-writer campaign (write-then-rename is overkill on a sim).
  bool save(const std::string& path) const;
  static std::optional<CampaignCheckpoint> load(const std::string& path);
};

}  // namespace acf::fuzzer
