#include "fuzzer/mutation_core.hpp"

#include <algorithm>

namespace acf::fuzzer::mutcore {

void flip_bit(util::Rng& rng, std::vector<std::uint8_t>& data) {
  if (data.empty()) return;
  const auto pos = rng.next_below(data.size());
  data[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
}

void overwrite_byte(util::Rng& rng, std::vector<std::uint8_t>& data) {
  if (data.empty()) return;
  data[rng.next_below(data.size())] = rng.next_byte();
}

void insert_byte(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len) {
  if (data.size() >= max_len) return;
  const auto pos = rng.next_below(data.size() + 1);
  data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), rng.next_byte());
}

void erase_byte(util::Rng& rng, std::vector<std::uint8_t>& data) {
  if (data.empty()) return;
  data.erase(data.begin() + static_cast<std::ptrdiff_t>(rng.next_below(data.size())));
}

void truncate(util::Rng& rng, std::vector<std::uint8_t>& data) {
  if (data.empty()) return;
  data.resize(static_cast<std::size_t>(rng.next_below(data.size())));
}

void duplicate_block(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len) {
  if (data.empty()) return;
  const auto from = rng.next_below(data.size());
  const auto count = std::min<std::size_t>(
      static_cast<std::size_t>(1 + rng.next_below(16)), data.size() - from);
  std::vector<std::uint8_t> block(data.begin() + static_cast<std::ptrdiff_t>(from),
                                  data.begin() + static_cast<std::ptrdiff_t>(from + count));
  const auto to = rng.next_below(data.size() + 1);
  data.insert(data.begin() + static_cast<std::ptrdiff_t>(to), block.begin(), block.end());
  if (data.size() > max_len) data.resize(max_len);
}

void splice_token(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len,
                  std::span<const std::string_view> dictionary) {
  const std::string_view token = dictionary[rng.next_below(dictionary.size())];
  const auto pos = rng.next_below(data.size() + 1);
  data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), token.begin(), token.end());
  if (data.size() > max_len) data.resize(max_len);
}

void mutate_once(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len,
                 std::span<const std::string_view> dictionary) {
  switch (rng.next_below(7)) {
    case 0: flip_bit(rng, data); break;
    case 1: overwrite_byte(rng, data); break;
    case 2: insert_byte(rng, data, max_len); break;
    case 3: erase_byte(rng, data); break;
    case 4: truncate(rng, data); break;
    case 5: duplicate_block(rng, data, max_len); break;
    default: splice_token(rng, data, max_len, dictionary); break;
  }
}

void mutate(util::Rng& rng, std::vector<std::uint8_t>& data, std::size_t max_len,
            std::span<const std::string_view> dictionary) {
  const auto rounds = 1 + rng.next_below(4);
  for (std::uint64_t i = 0; i < rounds; ++i) mutate_once(rng, data, max_len, dictionary);
}

std::vector<std::uint8_t> fresh(util::Rng& rng, std::size_t max_len,
                                std::string_view printable) {
  const std::size_t len = static_cast<std::size_t>(rng.next_below(max_len + 1));
  std::vector<std::uint8_t> out(len);
  if (rng.next_bool()) {
    rng.fill(out);
  } else {
    for (auto& byte : out) {
      byte = static_cast<std::uint8_t>(printable[rng.next_below(printable.size())]);
    }
  }
  return out;
}

}  // namespace acf::fuzzer::mutcore
