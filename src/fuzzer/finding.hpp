// Findings: "if a system failure occurs the conditions that caused it are
// recorded" — a finding captures the oracle observation, the stream position
// and the window of recently injected frames, enough to reproduce the run
// deterministically from the generator seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oracle/oracle.hpp"
#include "trace/capture.hpp"

namespace acf::fuzzer {

struct Finding {
  oracle::Observation observation;
  /// Frames the campaign had sent when the oracle fired.
  std::uint64_t frames_sent = 0;
  /// The last frames injected before detection (newest last).
  std::vector<trace::TimestampedFrame> recent_frames;
  /// Generator identity for replay.
  std::string generator;
  std::uint64_t seed = 0;

  /// One-line summary for reports.
  std::string summary() const;
};

}  // namespace acf::fuzzer
