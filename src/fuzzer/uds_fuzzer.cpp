#include "fuzzer/uds_fuzzer.hpp"

#include <cstdio>

#include "uds/uds_server.hpp"

namespace acf::fuzzer {

bool UdsServiceInfo::exists() const noexcept {
  if (positive > 0) return true;
  for (const auto& [nrc, count] : nrcs) {
    if (nrc != uds::kNrcServiceNotSupported && count > 0) return true;
  }
  return false;
}

std::vector<std::uint8_t> UdsFuzzReport::discovered_sids() const {
  std::vector<std::uint8_t> out;
  for (const auto& info : services) {
    if (info.exists()) out.push_back(info.sid);
  }
  return out;
}

UdsFuzzer::UdsFuzzer(sim::Scheduler& scheduler, transport::CanTransport& transport,
                     std::uint32_t request_id, std::uint32_t response_id, std::uint64_t seed)
    : scheduler_(scheduler),
      client_(scheduler,
              [&transport](const can::CanFrame& frame) { return transport.send(frame); },
              [request_id, response_id] {
                isotp::IsoTpConfig config;
                config.tx_id = request_id;
                config.rx_id = response_id;
                return config;
              }()),
      rng_(seed) {
  transport.set_rx_callback([this](const can::CanFrame& frame, sim::SimTime time) {
    client_.handle_frame(frame, time);
  });
}

std::vector<std::uint8_t> UdsFuzzer::transact(std::vector<std::uint8_t> request) {
  ++requests_;
  if (!client_.request(std::move(request))) return {};
  scheduler_.run_until_condition([this] { return client_.last_response().has_value(); },
                                 scheduler_.now() + response_window_);
  if (!client_.last_response()) return {};
  return client_.last_response()->payload;
}

void UdsFuzzer::classify(UdsServiceInfo& info, const std::vector<std::uint8_t>& response) {
  if (response.empty()) {
    ++info.silent;
    return;
  }
  if (response[0] == uds::kNegativeResponse) {
    ++info.negative;
    if (response.size() >= 3) ++info.nrcs[response[2]];
    return;
  }
  ++info.positive;
}

void UdsFuzzer::scan_services(UdsFuzzReport& report) {
  for (std::uint16_t sid16 = 0x00; sid16 <= 0xBF; ++sid16) {
    const auto sid = static_cast<std::uint8_t>(sid16);
    UdsServiceInfo info;
    info.sid = sid;
    classify(info, transact({sid}));
    classify(info, transact({sid, 0x01}));
    // Positive answers to a bare probe of a *write-class* service would be
    // a finding; flag positives for services that should be guarded.
    if (info.positive > 0 &&
        (sid == uds::kSidWriteDataByIdentifier || sid == uds::kSidSecurityAccess)) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "guarded service 0x%02X answered a blind probe positively", sid);
      report.anomalies.emplace_back(buf);
    }
    report.services.push_back(info);
  }
  report.requests_sent = requests_;
}

void UdsFuzzer::discover_dids(UdsFuzzReport& report, std::uint16_t first, std::uint16_t last) {
  for (std::uint32_t did = first; did <= last; ++did) {
    const auto response = transact({uds::kSidReadDataByIdentifier,
                                    static_cast<std::uint8_t>(did >> 8),
                                    static_cast<std::uint8_t>(did & 0xFF)});
    if (!response.empty() && response[0] == uds::kSidReadDataByIdentifier + 0x40) {
      report.readable_dids.push_back(static_cast<std::uint16_t>(did));
    }
  }
  report.requests_sent = requests_;
}

void UdsFuzzer::random_fuzz(UdsFuzzReport& report, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    std::vector<std::uint8_t> request(1 + rng_.next_below(16));
    rng_.fill(request);
    const std::uint8_t sid = request[0];
    const auto response = transact(request);
    if (response.empty()) continue;
    if (response[0] == uds::kNegativeResponse) {
      if (response.size() != 3 || response[1] != sid) {
        report.anomalies.push_back("malformed negative response to random request");
      }
      continue;
    }
    // A positive response to random bytes: only legitimate if the echo
    // matches the SID; anything else is an anomaly worth a finding.
    if (response[0] != static_cast<std::uint8_t>(sid + 0x40)) {
      report.anomalies.push_back("response SID does not match request");
    }
  }
  report.requests_sent = requests_;
}

UdsFuzzReport UdsFuzzer::run() {
  UdsFuzzReport report;
  scan_services(report);
  discover_dids(report);
  random_fuzz(report);
  return report;
}

}  // namespace acf::fuzzer
