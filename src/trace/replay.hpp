// Replay: re-injects a captured trace onto a bus with its original relative
// timing.  This is how a recorded fuzz finding is reproduced (the paper's
// "the conditions that caused it are recorded and the system is reset"), and
// doubles as a background-traffic generator for realistic bus load.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/scheduler.hpp"
#include "trace/capture.hpp"
#include "transport/transport.hpp"

namespace acf::trace {

struct ReplayOptions {
  /// Multiplies inter-frame gaps (2.0 = half speed, 0.5 = double speed).
  double time_scale = 1.0;
  /// Replays the trace this many times end-to-end (0 = forever).
  std::uint32_t repeat = 1;
  /// Gap inserted between repetitions.
  sim::Duration repeat_gap{std::chrono::milliseconds(10)};
};

class Replayer {
 public:
  /// Replays `frames` through `transport` on `scheduler`.  Both must
  /// outlive the replayer.  Timing is taken relative to the first frame.
  Replayer(sim::Scheduler& scheduler, transport::CanTransport& transport,
           std::vector<TimestampedFrame> frames, ReplayOptions options = {});

  /// Arms the replay starting at the current simulated time.
  void start();
  void stop();

  bool running() const noexcept { return running_; }
  std::uint64_t frames_sent() const noexcept { return sent_; }
  std::uint32_t repetitions_completed() const noexcept { return repetitions_; }

  /// Invoked when the configured repetitions complete.
  void set_on_done(std::function<void()> callback) { on_done_ = std::move(callback); }

 private:
  void schedule_next();
  void send_current();

  sim::Scheduler& scheduler_;
  transport::CanTransport& transport_;
  std::vector<TimestampedFrame> frames_;
  ReplayOptions options_;
  std::size_t index_ = 0;
  std::uint32_t repetitions_ = 0;
  std::uint64_t sent_ = 0;
  bool running_ = false;
  sim::SimTime rep_start_{0};
  sim::EventId pending_{};
  std::function<void()> on_done_;
};

}  // namespace acf::trace
