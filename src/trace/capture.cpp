#include "trace/capture.hpp"

namespace acf::trace {

CaptureTap::CaptureTap(can::VirtualBus& bus, std::string name, std::size_t limit)
    : bus_(bus), limit_(limit) {
  // Capture-only taps ride the bus's batched delivery slab; installing a
  // live callback (set_on_frame) drops back to immediate delivery.
  node_ = bus_.attach(*this, std::move(name), {}, /*listen_only=*/true, /*batched=*/true);
}

CaptureTap::~CaptureTap() { bus_.detach(node_); }

void CaptureTap::record(const can::CanFrame& frame, sim::SimTime time) {
  ++total_seen_;
  if (frames_.size() >= limit_) return;
  frames_.push_back({frame, time});
  if (on_frame_cb_) on_frame_cb_(frames_.back());
}

void CaptureTap::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  record(frame, time);
}

void CaptureTap::on_frame_batch(std::span<const can::BusDelivery> batch) {
  if (frames_.capacity() - frames_.size() < batch.size() && frames_.size() < limit_) {
    frames_.reserve(frames_.size() + batch.size());
  }
  for (const can::BusDelivery& delivery : batch) record(delivery.frame, delivery.time);
}

void CaptureTap::on_error_frame(sim::SimTime) { ++error_frames_; }

}  // namespace acf::trace
