#include "trace/capture.hpp"

namespace acf::trace {

CaptureTap::CaptureTap(can::VirtualBus& bus, std::string name, std::size_t limit)
    : bus_(bus), limit_(limit) {
  node_ = bus_.attach(*this, std::move(name), {}, /*listen_only=*/true);
}

CaptureTap::~CaptureTap() { bus_.detach(node_); }

void CaptureTap::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  ++total_seen_;
  if (frames_.size() >= limit_) return;
  frames_.push_back({frame, time});
  if (on_frame_cb_) on_frame_cb_(frames_.back());
}

void CaptureTap::on_error_frame(sim::SimTime) { ++error_frames_; }

}  // namespace acf::trace
