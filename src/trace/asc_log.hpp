// Vector ASC log format: the native trace format of the CANoe/CANalyzer
// tooling the paper's HIL bench is built on.  Supporting it alongside the
// candump format means captures flow both ways between this framework and
// the industry toolchain.
//
// Emitted/parsed subset (one line per frame):
//    0.005328 1  43A             Rx   d 8 1C 21 17 71 17 71 FF FF
//    1.200000 1  1ABCDEF3x       Rx   d 2 DE AD        (extended: 'x' suffix)
//    2.000000 1  321             Rx   r 4              (remote frame)
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/capture.hpp"

namespace acf::trace {

/// One ASC body line for a frame (no header).
std::string to_asc_line(const TimestampedFrame& entry, int channel = 1);

/// Parses one ASC body line; nullopt for non-frame lines (headers, events)
/// and malformed input.
std::optional<TimestampedFrame> parse_asc_line(std::string_view line);

/// Writes a complete ASC file (header + one line per frame).
void write_asc(std::ostream& out, std::span<const TimestampedFrame> frames, int channel = 1);

/// Reads an ASC file, skipping headers/events; malformed frame lines are
/// reported through `errors` when provided.
std::vector<TimestampedFrame> read_asc(std::istream& in,
                                       std::vector<std::string>* errors = nullptr);

}  // namespace acf::trace
