// Frame capture: the "CAN bus traffic monitor" component of the paper's
// fuzzer.  A CaptureTap attaches to a bus (or wraps a transport callback)
// and records timestamped frames for analysis, logging and replay.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "can/frame.hpp"
#include "sim/time.hpp"

namespace acf::trace {

struct TimestampedFrame {
  can::CanFrame frame;
  sim::SimTime time{0};
};

/// Records every frame seen on a bus (listen-only; never transmits, so it is
/// invisible to the system under test, like a wire tap on the OBD port).
class CaptureTap final : private can::BusListener {
 public:
  /// Attaches to `bus`.  `limit` bounds memory for long campaigns
  /// (oldest-first truncation is NOT applied; capture simply stops growing —
  /// analysis of "the first N frames" stays deterministic).
  explicit CaptureTap(can::VirtualBus& bus, std::string name = "tap",
                      std::size_t limit = std::numeric_limits<std::size_t>::max());
  ~CaptureTap() override;

  CaptureTap(const CaptureTap&) = delete;
  CaptureTap& operator=(const CaptureTap&) = delete;

  /// Accessors drain the bus's delivery slab first, so a batched tap always
  /// reads a complete view of the traffic delivered so far.
  const std::vector<TimestampedFrame>& frames() const {
    bus_.flush_deliveries();
    return frames_;
  }
  std::size_t size() const {
    bus_.flush_deliveries();
    return frames_.size();
  }
  std::uint64_t total_seen() const {
    bus_.flush_deliveries();
    return total_seen_;
  }
  std::uint64_t error_frames_seen() const noexcept { return error_frames_; }
  void clear() {
    bus_.flush_deliveries();
    frames_.clear();
  }

  /// Optional live callback invoked for each frame as it is captured.
  /// Installing one switches the tap from slab (batched) to immediate
  /// delivery, so reactions fire at the frame's own simulated instant.
  void set_on_frame(std::function<void(const TimestampedFrame&)> callback) {
    bus_.flush_deliveries();
    on_frame_cb_ = std::move(callback);
    bus_.set_batched(node_, on_frame_cb_ == nullptr);
  }

 private:
  void on_frame(const can::CanFrame& frame, sim::SimTime time) override;
  void on_frame_batch(std::span<const can::BusDelivery> batch) override;
  void on_error_frame(sim::SimTime time) override;
  void record(const can::CanFrame& frame, sim::SimTime time);

  can::VirtualBus& bus_;
  can::NodeId node_;
  std::size_t limit_;
  std::vector<TimestampedFrame> frames_;
  std::uint64_t total_seen_ = 0;
  std::uint64_t error_frames_ = 0;
  std::function<void(const TimestampedFrame&)> on_frame_cb_;
};

}  // namespace acf::trace
