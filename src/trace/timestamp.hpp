// Shared timestamp parsing for the log readers.
//
// Integer arithmetic end-to-end: parse∘print round-trips exactly, and
// hostile stamps ("inf", "1e308", 20-digit seconds) are rejected instead of
// flowing through a float→integer cast whose out-of-range behaviour is
// undefined.  The fuzz harnesses in src/selftest/ lean on this — every
// accepted stamp must survive a print/parse cycle byte-identically.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>

#include "sim/time.hpp"

namespace acf::trace {

/// Largest whole-second value representable as int64 nanoseconds (~292 y).
inline constexpr std::uint64_t kMaxTimestampSecs = 9'223'372'035ULL;

/// Parses "secs[.frac]" into simulated time.  Fractional digits beyond
/// nanosecond resolution are truncated.  Returns nullopt for empty input,
/// non-digit characters (no signs, no exponents) or seconds past the int64
/// nanosecond range.
inline std::optional<sim::SimTime> parse_timestamp(std::string_view stamp) {
  const std::size_t dot = stamp.find('.');
  const std::string_view whole =
      stamp.substr(0, dot == std::string_view::npos ? stamp.size() : dot);
  const std::string_view frac =
      dot == std::string_view::npos ? std::string_view{} : stamp.substr(dot + 1);
  if (whole.empty() && frac.empty()) return std::nullopt;

  std::uint64_t secs = 0;
  if (!whole.empty()) {
    const auto [ptr, ec] = std::from_chars(whole.data(), whole.data() + whole.size(), secs);
    if (ec != std::errc{} || ptr != whole.data() + whole.size()) return std::nullopt;
  }
  if (secs > kMaxTimestampSecs) return std::nullopt;

  std::uint64_t frac_ns = 0;
  std::uint64_t scale = 100'000'000ULL;  // first fractional digit = 100 ms
  for (const char c : frac) {
    if (c < '0' || c > '9') return std::nullopt;
    if (scale != 0) {
      frac_ns += static_cast<std::uint64_t>(c - '0') * scale;
      scale /= 10;
    }
  }
  return sim::SimTime{static_cast<std::int64_t>(secs * 1'000'000'000ULL + frac_ns)};
}

}  // namespace acf::trace
