// candump-compatible log I/O: "(0005.328009) can0 043A#1C21177117 71FFFF"
// minus the embedded space (real candump writes contiguous hex).  Using the
// can-utils format means captures interoperate with the standard Linux
// tooling (canplayer, log2asc) the automotive community already uses.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/capture.hpp"

namespace acf::trace {

/// One "(seconds.micros) channel id#data" line.  Remote frames render as
/// id#R<dlc>; FD frames as id##<flags><data> (canutils 2.x convention).
std::string to_candump_line(const TimestampedFrame& entry, std::string_view channel = "can0");

/// Parses one candump line.  Returns nullopt on malformed input.
std::optional<TimestampedFrame> parse_candump_line(std::string_view line);

/// Writes a whole capture to a stream, one line per frame.
void write_candump(std::ostream& out, std::span<const TimestampedFrame> frames,
                   std::string_view channel = "can0");

/// Reads a candump log; malformed lines are collected into `errors` (if
/// non-null) and skipped.
std::vector<TimestampedFrame> read_candump(std::istream& in,
                                           std::vector<std::string>* errors = nullptr);

}  // namespace acf::trace
