#include "trace/candump_log.hpp"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>

#include "trace/timestamp.hpp"
#include "util/hex.hpp"

namespace acf::trace {

std::string to_candump_line(const TimestampedFrame& entry, std::string_view channel) {
  const auto total_ns = static_cast<std::uint64_t>(entry.time.count());
  const std::uint64_t secs = total_ns / 1'000'000'000ULL;
  const std::uint64_t micros = (total_ns % 1'000'000'000ULL) / 1'000ULL;
  char head[64];
  std::snprintf(head, sizeof head, "(%llu.%06llu) ", static_cast<unsigned long long>(secs),
                static_cast<unsigned long long>(micros));

  const can::CanFrame& f = entry.frame;
  std::string line = head;
  line.append(channel);
  line.push_back(' ');
  line += util::hex_u32(f.id(), f.is_extended() ? 8 : 3);
  if (f.is_remote()) {
    line += "#R";
    line += static_cast<char>('0' + f.dlc());
  } else if (f.is_fd()) {
    line += "##";
    line += f.brs() ? '1' : '0';
    line += util::hex_bytes(f.payload(), '\0');
  } else {
    line += '#';
    line += util::hex_bytes(f.payload(), '\0');
  }
  return line;
}

std::optional<TimestampedFrame> parse_candump_line(std::string_view line) {
  // "(secs.micros) channel id#data"
  const std::size_t open = line.find('(');
  const std::size_t close = line.find(')');
  if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
    return std::nullopt;
  }
  const std::string_view stamp = line.substr(open + 1, close - open - 1);
  const auto time = parse_timestamp(stamp);
  if (!time) return std::nullopt;

  std::string_view rest = line.substr(close + 1);
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t space = rest.find(' ');
  if (space == std::string_view::npos) return std::nullopt;
  rest = rest.substr(space + 1);  // skip channel name
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);

  const std::size_t hash = rest.find('#');
  if (hash == std::string_view::npos) return std::nullopt;
  const auto id = util::parse_hex_u32(rest.substr(0, hash));
  if (!id) return std::nullopt;
  const can::IdFormat format =
      (hash > 3 || *id > can::kMaxStandardId) ? can::IdFormat::kExtended
                                              : can::IdFormat::kStandard;
  std::string_view body = rest.substr(hash + 1);
  while (!body.empty() && (body.back() == '\r' || body.back() == ' ')) body.remove_suffix(1);

  std::optional<can::CanFrame> frame;
  if (!body.empty() && body.front() == '#') {
    // FD frame: "##<flag><data>"
    body.remove_prefix(1);
    if (body.empty()) return std::nullopt;
    const bool brs = body.front() != '0';
    body.remove_prefix(1);
    const auto bytes = util::parse_hex_bytes(body);
    if (!bytes) return std::nullopt;
    frame = can::CanFrame::fd_data(*id, *bytes, brs, format);
  } else if (!body.empty() && (body.front() == 'R' || body.front() == 'r')) {
    body.remove_prefix(1);
    std::uint8_t dlc = 0;
    if (!body.empty()) {
      if (body.front() < '0' || body.front() > '8') return std::nullopt;
      dlc = static_cast<std::uint8_t>(body.front() - '0');
    }
    frame = can::CanFrame::remote(*id, dlc, format);
  } else {
    const auto bytes = util::parse_hex_bytes(body);
    if (!bytes) return std::nullopt;
    frame = can::CanFrame::data(*id, *bytes, format);
  }
  if (!frame) return std::nullopt;

  TimestampedFrame out;
  out.frame = *frame;
  out.time = *time;
  return out;
}

void write_candump(std::ostream& out, std::span<const TimestampedFrame> frames,
                   std::string_view channel) {
  for (const auto& entry : frames) {
    out << to_candump_line(entry, channel) << '\n';
  }
}

std::vector<TimestampedFrame> read_candump(std::istream& in, std::vector<std::string>* errors) {
  std::vector<TimestampedFrame> out;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (auto entry = parse_candump_line(line)) {
      out.push_back(*entry);
    } else if (errors != nullptr) {
      errors->push_back("line " + std::to_string(line_no) + ": unparseable candump entry");
    }
  }
  return out;
}

}  // namespace acf::trace
