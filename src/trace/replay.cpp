#include "trace/replay.hpp"

#include <cmath>
#include <limits>

namespace acf::trace {

Replayer::Replayer(sim::Scheduler& scheduler, transport::CanTransport& transport,
                   std::vector<TimestampedFrame> frames, ReplayOptions options)
    : scheduler_(scheduler), transport_(transport), frames_(std::move(frames)),
      options_(options) {}

void Replayer::start() {
  if (frames_.empty() || running_) return;
  running_ = true;
  index_ = 0;
  repetitions_ = 0;
  rep_start_ = scheduler_.now();
  schedule_next();
}

void Replayer::stop() {
  running_ = false;
  scheduler_.cancel(pending_);
  pending_ = {};
}

void Replayer::schedule_next() {
  if (!running_) return;
  const sim::Duration original_offset = frames_[index_].time - frames_.front().time;
  // Clamp before converting: llround past the int64 range is undefined, and
  // a hostile trace can put ~292 years between two frames.  Negative offsets
  // (out-of-order captures) and NaN scales replay immediately.
  constexpr double kMaxOffsetNs = 4.6e18;  // half the int64 ns range
  double scaled_d = static_cast<double>(original_offset.count()) * options_.time_scale;
  if (!(scaled_d >= 0.0)) scaled_d = 0.0;
  if (scaled_d > kMaxOffsetNs) scaled_d = kMaxOffsetNs;
  const auto scaled = static_cast<std::int64_t>(std::llround(scaled_d));
  constexpr std::int64_t kMaxNs = std::numeric_limits<std::int64_t>::max();
  const std::int64_t due_ns = rep_start_.count() > kMaxNs - scaled
                                  ? kMaxNs
                                  : rep_start_.count() + scaled;
  const sim::SimTime due{due_ns};
  pending_ = scheduler_.schedule_at(due, [this] { send_current(); });
}

void Replayer::send_current() {
  if (!running_) return;
  transport_.send(frames_[index_].frame);
  ++sent_;
  ++index_;
  if (index_ < frames_.size()) {
    schedule_next();
    return;
  }
  ++repetitions_;
  if (options_.repeat != 0 && repetitions_ >= options_.repeat) {
    running_ = false;
    if (on_done_) on_done_();
    return;
  }
  index_ = 0;
  rep_start_ = scheduler_.now() + options_.repeat_gap;
  schedule_next();
}

}  // namespace acf::trace
