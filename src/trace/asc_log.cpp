#include "trace/asc_log.hpp"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "trace/timestamp.hpp"
#include "util/hex.hpp"

namespace acf::trace {

std::string to_asc_line(const TimestampedFrame& entry, int channel) {
  const can::CanFrame& frame = entry.frame;
  // Integer formatting (matching %11.6f's layout) so that a printed line
  // parses back to the exact same microsecond, with no float rounding.
  const auto total_ns = static_cast<std::uint64_t>(entry.time.count() < 0 ? 0 : entry.time.count());
  const std::uint64_t secs = total_ns / 1'000'000'000ULL;
  const std::uint64_t micros = (total_ns % 1'000'000'000ULL) / 1'000ULL;
  char head[64];
  std::snprintf(head, sizeof head, "%4llu.%06llu %d  ", static_cast<unsigned long long>(secs),
                static_cast<unsigned long long>(micros), channel);
  std::string id_field = util::hex_u32(frame.id(), frame.is_extended() ? 8 : 3);
  if (frame.is_extended()) id_field += 'x';
  while (id_field.size() < 15) id_field += ' ';

  std::string line = head;
  line += id_field;
  line += " Rx   ";
  if (frame.is_remote()) {
    line += "r ";
    line += std::to_string(frame.dlc());
  } else {
    line += "d ";
    line += std::to_string(frame.length());
    if (frame.length() > 0) {
      line += ' ';
      line += util::hex_bytes(frame.payload());
    }
  }
  return line;
}

std::optional<TimestampedFrame> parse_asc_line(std::string_view line) {
  std::istringstream in{std::string(line)};
  int channel = 0;
  std::string stamp, id_token, direction, kind;
  if (!(in >> stamp >> channel >> id_token >> direction >> kind)) return std::nullopt;
  const auto time = parse_timestamp(stamp);
  if (!time) return std::nullopt;
  if (direction != "Rx" && direction != "Tx") return std::nullopt;
  if (kind != "d" && kind != "r") return std::nullopt;

  bool extended = false;
  if (!id_token.empty() && (id_token.back() == 'x' || id_token.back() == 'X')) {
    extended = true;
    id_token.pop_back();
  }
  const auto id = util::parse_hex_u32(id_token);
  if (!id) return std::nullopt;
  const auto format = extended ? can::IdFormat::kExtended : can::IdFormat::kStandard;

  unsigned dlc = 0;
  if (!(in >> dlc) || dlc > 8) return std::nullopt;

  std::optional<can::CanFrame> frame;
  if (kind == "r") {
    frame = can::CanFrame::remote(*id, static_cast<std::uint8_t>(dlc), format);
  } else {
    std::vector<std::uint8_t> payload;
    payload.reserve(dlc);
    for (unsigned i = 0; i < dlc; ++i) {
      std::string byte_token;
      if (!(in >> byte_token)) return std::nullopt;
      const auto byte = util::parse_hex_byte(byte_token);
      if (!byte) return std::nullopt;
      payload.push_back(*byte);
    }
    frame = can::CanFrame::data(*id, payload, format);
  }
  if (!frame) return std::nullopt;

  TimestampedFrame out;
  out.frame = *frame;
  out.time = *time;
  return out;
}

void write_asc(std::ostream& out, std::span<const TimestampedFrame> frames, int channel) {
  out << "date Sat Jan 1 00:00:00.000 2026\n";
  out << "base hex  timestamps absolute\n";
  out << "internal events logged\n";
  for (const auto& entry : frames) out << to_asc_line(entry, channel) << '\n';
}

std::vector<TimestampedFrame> read_asc(std::istream& in, std::vector<std::string>* errors) {
  std::vector<TimestampedFrame> out;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    // Header/event lines start with a letter; frame lines start with
    // whitespace + digits.
    const std::size_t first = line.find_first_not_of(' ');
    if (first == std::string::npos || !std::isdigit(static_cast<unsigned char>(line[first]))) {
      continue;
    }
    if (auto entry = parse_asc_line(line)) {
      out.push_back(*entry);
    } else if (errors != nullptr) {
      errors->push_back("line " + std::to_string(line_no) + ": unparseable ASC entry");
    }
  }
  return out;
}

}  // namespace acf::trace
