// Gateway ECU bridging the powertrain and body buses.
//
// The paper's discussion notes that "the use of a gateway ECU in newer
// vehicles indicates that manufacturers are responding" to CAN's openness.
// The ablation bench (A2) measures exactly this: with whitelist forwarding,
// fuzz traffic injected on one bus no longer reaches victims on the other.
#pragma once

#include <cstdint>
#include <string>

#include "can/bus.hpp"
#include "can/filter.hpp"

namespace acf::vehicle {

/// Per-direction forwarding policy.  Unlike controller acceptance filters,
/// an empty whitelist here means "forward nothing".
struct ForwardRule {
  bool forward_all = false;
  can::FilterBank whitelist;

  bool allows(const can::CanFrame& frame) const noexcept {
    if (forward_all) return true;
    return !whitelist.empty() && whitelist.accepts(frame);
  }
};

struct GatewayStats {
  std::uint64_t forwarded_p_to_b = 0;
  std::uint64_t forwarded_b_to_p = 0;
  std::uint64_t blocked_p_to_b = 0;
  std::uint64_t blocked_b_to_p = 0;
};

class GatewayEcu {
 public:
  GatewayEcu(can::VirtualBus& powertrain, can::VirtualBus& body, ForwardRule powertrain_to_body,
             ForwardRule body_to_powertrain);
  ~GatewayEcu();

  GatewayEcu(const GatewayEcu&) = delete;
  GatewayEcu& operator=(const GatewayEcu&) = delete;

  /// Whitelists for the standard vehicle: cluster feed (engine, speed,
  /// status, telltales, wheels) powertrain->body; diagnostics both ways.
  static ForwardRule default_powertrain_to_body();
  static ForwardRule default_body_to_powertrain();

  void set_rules(ForwardRule powertrain_to_body, ForwardRule body_to_powertrain);
  const GatewayStats& stats() const noexcept { return stats_; }

 private:
  class Port final : public can::BusListener {
   public:
    Port(GatewayEcu& owner, bool from_powertrain) : owner_(owner),
                                                    from_powertrain_(from_powertrain) {}
    void on_frame(const can::CanFrame& frame, sim::SimTime time) override {
      owner_.forward(frame, time, from_powertrain_);
    }

   private:
    GatewayEcu& owner_;
    bool from_powertrain_;
  };

  void forward(const can::CanFrame& frame, sim::SimTime time, bool from_powertrain);

  can::VirtualBus& powertrain_;
  can::VirtualBus& body_;
  ForwardRule p_to_b_;
  ForwardRule b_to_p_;
  Port powertrain_port_;
  Port body_port_;
  can::NodeId powertrain_node_;
  can::NodeId body_node_;
  GatewayStats stats_;
};

}  // namespace acf::vehicle
