#include "vehicle/vehicle.hpp"

namespace acf::vehicle {

AbsEcu::AbsEcu(sim::Scheduler& scheduler, can::VirtualBus& bus, const EngineEcu& engine)
    : Ecu(scheduler, bus, "ABS"), engine_(engine) {
  add_periodic(std::chrono::milliseconds(20), [this]() -> std::optional<can::CanFrame> {
    const auto* def = db_.by_id(dbc::kMsgWheelSpeeds);
    const double v = engine_.speed_kph();
    // Per-wheel deltas: slight differential offsets as in a gentle curve.
    return def->encode({{"WheelFL", v * 1.002},
                        {"WheelFR", v * 0.998},
                        {"WheelRL", v * 1.001},
                        {"WheelRR", v * 0.999}});
  });
}

void AbsEcu::handle_frame(const can::CanFrame&, sim::SimTime) {}

Vehicle::Vehicle(sim::Scheduler& scheduler, VehicleConfig config) {
  powertrain_ = std::make_unique<can::VirtualBus>(scheduler, config.powertrain_bus);
  body_ = std::make_unique<can::VirtualBus>(scheduler, config.body_bus);

  engine_ = std::make_unique<EngineEcu>(scheduler, *powertrain_, config.drive_cycle);
  abs_ = std::make_unique<AbsEcu>(scheduler, *powertrain_, *engine_);
  cluster_ = std::make_unique<InstrumentCluster>(scheduler, *body_);
  bcm_ = std::make_unique<BodyControlModule>(scheduler, *body_, config.unlock_predicate);
  head_unit_ = std::make_unique<HeadUnit>(scheduler, *body_);

  ForwardRule p_to_b = config.gateway_filtering ? GatewayEcu::default_powertrain_to_body()
                                                : ForwardRule{true, {}};
  ForwardRule b_to_p = config.gateway_filtering ? GatewayEcu::default_body_to_powertrain()
                                                : ForwardRule{true, {}};
  gateway_ = std::make_unique<GatewayEcu>(*powertrain_, *body_, std::move(p_to_b),
                                          std::move(b_to_p));
}

UnlockTestbench::UnlockTestbench(sim::Scheduler& scheduler, UnlockPredicate predicate,
                                 can::BusConfig bus_config) {
  bus_ = std::make_unique<can::VirtualBus>(scheduler, bus_config);
  head_unit_ = std::make_unique<HeadUnit>(scheduler, *bus_);
  bcm_ = std::make_unique<BodyControlModule>(scheduler, *bus_, predicate);
  if (predicate.require_auth) {
    // A factory-provisioned session key shared by the command endpoints.
    const security::Key128 key = {0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
                                  0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C};
    head_unit_->install_auth_key(key);
    bcm_->install_auth_key(key);
  }
}

}  // namespace acf::vehicle
