// Door lock module: the LIN-slave actuator behind the BCM — the physical
// end of the paper's remote-unlock chain (its bench used an LED on the BCM
// itself; production doors put the actuator one LIN hop further).
//
// LIN ids: 0x23 carries the lock command (published by the master/BCM),
// 0x24 carries this module's status response (lock state, actuation count).
#pragma once

#include <cstdint>

#include "lin/lin.hpp"

namespace acf::vehicle {

class DoorLockModule final : public lin::LinSlave {
 public:
  static constexpr std::uint8_t kCommandFrameId = 0x23;
  static constexpr std::uint8_t kStatusFrameId = 0x24;
  /// Command byte values inside the LIN command frame.
  static constexpr std::uint8_t kLinCmdLock = 0x01;
  static constexpr std::uint8_t kLinCmdUnlock = 0x02;

  bool unlocked() const noexcept { return unlocked_; }
  bool lock_led_on() const noexcept { return unlocked_; }
  std::uint64_t actuations() const noexcept { return actuations_; }

  // lin::LinSlave
  std::optional<std::vector<std::uint8_t>> on_header(std::uint8_t id) override;
  void on_frame(const lin::LinFrame& frame, sim::SimTime time) override;

 private:
  bool unlocked_ = false;
  std::uint64_t actuations_ = 0;
};

}  // namespace acf::vehicle
