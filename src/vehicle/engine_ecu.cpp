#include "vehicle/engine_ecu.hpp"

#include <algorithm>
#include <cmath>

namespace acf::vehicle {

namespace {
constexpr auto kControlPeriod = std::chrono::milliseconds(10);
constexpr std::uint32_t kDtcImplausibleWheelSpeed = 0x0C0100;
}  // namespace

std::vector<DrivePhase> default_drive_cycle() {
  using std::chrono::seconds;
  return {
      {seconds(20), 800.0, 0.0, 5.0},     // idle
      {seconds(15), 2800.0, 40.0, 45.0},  // accelerate
      {seconds(40), 2200.0, 70.0, 25.0},  // cruise
      {seconds(15), 3400.0, 95.0, 60.0},  // overtake
      {seconds(20), 2000.0, 60.0, 20.0},  // settle
      {seconds(10), 900.0, 0.0, 5.0},     // brake to stop
  };
}

EngineEcu::EngineEcu(sim::Scheduler& scheduler, can::VirtualBus& bus,
                     std::vector<DrivePhase> cycle)
    : Ecu(scheduler, bus, "ECM"), cycle_(std::move(cycle)) {
  if (cycle_.empty()) cycle_ = default_drive_cycle();
  for (const auto& phase : cycle_) cycle_length_ += phase.duration;

  scheduler.schedule_every(kControlPeriod, [this] {
    if (!powered() || crashed()) return;
    control_tick();
  });

  // J1979 emissions diagnostics on the standard ids (also enables UDS on
  // the same physical pair; UDS and OBD modes do not collide: SIDs differ).
  enable_uds(dbc::kUdsEngineRequest, dbc::kUdsEngineResponse);
  obd::ObdDataSource source;
  source.rpm = [this] { return rpm_; };
  source.speed_kph = [this] { return speed_kph_; };
  source.coolant_c = [this] { return coolant_c_; };
  source.throttle_pct = [this] { return throttle_pct_; };
  source.dtcs = [this] {
    std::vector<std::uint16_t> out;
    for (const auto& dtc : dtcs().all()) {
      out.push_back(static_cast<std::uint16_t>(dtc.code & 0xFFFF));
    }
    return out;
  };
  source.clear_dtcs = [this] { dtcs().clear_all(); };
  obd_ = std::make_unique<obd::ObdServer>(
      scheduler, [this](const can::CanFrame& frame) { return send(frame); },
      dbc::kUdsEngineRequest, std::move(source));

  add_periodic(kControlPeriod, [this]() -> std::optional<can::CanFrame> {
    const auto* def = db_.by_id(dbc::kMsgEngineData);
    return def->encode({{"EngineRPM", rpm_},
                        {"ThrottlePct", throttle_pct_},
                        {"CoolantTempC", coolant_c_},
                        {"EngineRunning", 1.0},
                        {"FuelRate", 50.0 + rpm_ * 0.3}});
  });
  add_periodic(std::chrono::milliseconds(20), [this]() -> std::optional<can::CanFrame> {
    const auto* def = db_.by_id(dbc::kMsgVehicleSpeed);
    const double gear = speed_kph_ < 1 ? 0 : std::clamp(speed_kph_ / 20.0 + 1.0, 1.0, 6.0);
    return def->encode({{"SpeedKph", speed_kph_},
                        {"AccelPct", throttle_pct_},
                        {"BrakeActive", throttle_pct_ < 2.0 && speed_kph_ > 1.0 ? 1.0 : 0.0},
                        {"GearPosition", std::floor(gear)},
                        {"SpeedValid", 1.0},
                        {"CruiseEngaged", 0.0}});
  });
  add_periodic(std::chrono::milliseconds(100), [this]() -> std::optional<can::CanFrame> {
    const auto* def = db_.by_id(dbc::kMsgPowertrainStatus);
    return def->encode({{"OilTempC", coolant_c_ * 0.9},
                        {"OilPressureKpa", 180.0 + rpm_ * 0.05},
                        {"IntakeTempC", 23.0},
                        {"BatteryVolts", 14.1},
                        {"FuelLevelPct", fuel_pct_},
                        {"AmbientTempC", 17.0},
                        {"Reserved", 65535.0}});
  });
  add_periodic(std::chrono::milliseconds(100), [this]() -> std::optional<can::CanFrame> {
    const auto* def = db_.by_id(dbc::kMsgTelltales);
    const bool mil = dtcs().mil_requested();
    return def->encode({{"MilOn", mil ? 1.0 : 0.0},
                        {"OilWarning", 0.0},
                        {"BatteryWarning", 0.0},
                        {"CoolantWarning", coolant_c_ > 115.0 ? 1.0 : 0.0},
                        {"AbsWarning", 0.0},
                        {"AirbagWarning", 0.0},
                        {"DtcCount", static_cast<double>(dtcs().count())}});
  });
}

void EngineEcu::on_power_on() {
  rpm_ = 800.0;
  speed_kph_ = 0.0;
  throttle_pct_ = 5.0;
  governor_disturbance_ = 0.0;
  idle_roughness_ = 0.0;
}

void EngineEcu::control_tick() {
  // Locate the current phase within the repeating cycle.
  const auto now = scheduler().now();
  auto offset = sim::Duration{now.count() % cycle_length_.count()};
  const DrivePhase* phase = &cycle_.front();
  for (const auto& p : cycle_) {
    if (offset < p.duration) {
      phase = &p;
      break;
    }
    offset -= p.duration;
  }

  // First-order tracking toward the phase targets.
  const double dt = sim::to_seconds(kControlPeriod);
  const double rpm_tau = 1.2;
  const double speed_tau = 4.0;
  double rpm_target = phase->target_rpm;

  // Idle governor: compensates engine load using wheel-speed feedback.  A
  // disturbance (e.g. fuzzed WHEEL_SPEEDS frames) shakes the idle target.
  rpm_target += governor_disturbance_;
  governor_disturbance_ *= std::exp(-dt / 0.5);  // decays in ~0.5 s

  // Small deterministic idle hunt (a positional oscillation of the target,
  // so idle traffic is not perfectly constant).
  const double t = sim::to_seconds(now);
  rpm_target += 8.0 * std::sin(t * 5.0);

  rpm_ += (rpm_target - rpm_) * (dt / rpm_tau);
  speed_kph_ += (phase->target_speed_kph - speed_kph_) * (dt / speed_tau);
  throttle_pct_ = phase->throttle_pct;

  coolant_c_ = std::min(92.0, coolant_c_ + dt * 0.4);
  fuel_pct_ = std::max(5.0, fuel_pct_ - dt * 0.0004 * (1.0 + rpm_ / 2000.0));
  odometer_km_ += speed_kph_ * dt / 3600.0;

  const double delta = std::fabs(rpm_ - last_rpm_);
  last_rpm_ = rpm_;
  // Peak-hold with ~1 s decay.
  idle_roughness_ = std::max(delta, idle_roughness_ * (1.0 - dt));
}

void EngineEcu::handle_frame(const can::CanFrame& frame, sim::SimTime time) {
  if (obd_) obd_->handle_frame(frame, time);
  if (frame.id() != dbc::kMsgWheelSpeeds || frame.is_remote()) return;
  const auto* def = db_.by_id(dbc::kMsgWheelSpeeds);
  const auto values = def->decode(frame);
  const auto fl = values.find("WheelFL");
  const auto fr = values.find("WheelFR");
  if (fl == values.end() || fr == values.end()) return;
  const double avg = (fl->second + fr->second) / 2.0;

  // Plausibility: wheel speed must roughly agree with our own road speed.
  const double discrepancy = std::fabs(avg - speed_kph_);
  if (discrepancy > 25.0) {
    ++implausible_inputs_;
    // The governor reacts before the plausibility monitor confirms the
    // fault — this transient reaction is the erratic idle the paper saw.
    governor_disturbance_ = std::clamp(discrepancy * 4.0, 0.0, 600.0);
    if (implausible_inputs_ % 16 == 0) {
      dtcs().raise(kDtcImplausibleWheelSpeed, "wheel speed implausible vs road speed");
    }
    return;
  }
  wheel_speed_avg_ = avg;
}

}  // namespace acf::vehicle
