// Infotainment head unit (IVI): the in-vehicle endpoint of the remote
// smartphone-app unlock path (paper Figs. 10-13).  The app connection itself
// is out of band ("a secure connection — or should be"); the head unit's
// job on the CAN side is to translate app requests into BODY_COMMAND frames.
#pragma once

#include <cstdint>
#include <memory>

#include "dbc/target_vehicle_db.hpp"
#include "ecu/ecu.hpp"
#include "security/mac.hpp"

namespace acf::vehicle {

class HeadUnit final : public ecu::Ecu {
 public:
  HeadUnit(sim::Scheduler& scheduler, can::VirtualBus& bus);

  /// The smartphone/PC app proxy: issue lock / unlock.  Returns false if
  /// the frame could not be queued.
  bool request_unlock() { return send_command(dbc::kCmdUnlock); }
  bool request_lock() { return send_command(dbc::kCmdLock); }

  /// Acks observed from the BCM (app feedback path).
  std::uint64_t acks_seen() const noexcept { return acks_seen_; }
  std::uint8_t last_acked_command() const noexcept { return last_acked_command_; }

  /// Installs the shared key: commands are then MAC-signed (the BCM must
  /// hold the same key and an authenticated predicate).
  void install_auth_key(const security::Key128& key) {
    signer_ = std::make_unique<security::FrameAuthenticator>(key);
  }

 private:
  void handle_frame(const can::CanFrame& frame, sim::SimTime time) override;
  bool send_command(std::uint8_t command);

  dbc::Database db_ = dbc::target_vehicle_database();
  std::uint8_t sequence_ = 0;
  std::uint64_t acks_seen_ = 0;
  std::uint8_t last_acked_command_ = 0;
  std::unique_ptr<security::FrameAuthenticator> signer_;
};

}  // namespace acf::vehicle
