#include "vehicle/body_control.hpp"

namespace acf::vehicle {

namespace {
// The legitimate command frame (paper Fig. 13): byte0 = command (0x10 lock /
// 0x20 unlock), then 5F 01 00 <seq> 20 00, DLC 7 (declared in the signal
// database — the DLC-checking predicate validates against that declaration,
// the same dlc_matches check the ids::DlcConsistencyDetector runs).  The
// bytes after the command byte form the prefix checked by hardened
// predicates.
constexpr std::uint8_t kExpectedPrefix[4] = {0x00 /*cmd placeholder*/, 0x5F, 0x01, 0x00};
}  // namespace

BodyControlModule::BodyControlModule(sim::Scheduler& scheduler, can::VirtualBus& bus,
                                     UnlockPredicate predicate)
    : Ecu(scheduler, bus, "BCM"), predicate_(predicate) {
  enable_uds(dbc::kUdsBcmRequest, dbc::kUdsBcmResponse);
  uds_server()->set_did(0xF190, {'W', 'V', 'W', 'Z', 'Z', 'Z', '1', 'K', 'Z', 'A',
                                 'W', '0', '0', '0', '0', '1', '7'});
  uds_server()->set_did(0xF195, {'2', '.', '0', '.', '9'});

  add_periodic(std::chrono::milliseconds(100), [this]() -> std::optional<can::CanFrame> {
    const auto* def = db_.by_id(dbc::kMsgDoorStatus);
    return def->encode({{"LockState", unlocked_ ? 1.0 : 0.0},
                        {"DriverDoorOpen", 0.0},
                        {"PassengerDoorOpen", 0.0},
                        {"InteriorLight", unlocked_ ? 1.0 : 0.0}});
  });
  add_periodic(std::chrono::milliseconds(100), [this]() -> std::optional<can::CanFrame> {
    const auto* def = db_.by_id(dbc::kMsgClusterDisplay);
    return def->encode({{"DisplayMode", 0.0},
                        {"DisplayArg", 0.0},
                        {"OdometerKm", odometer_km_},
                        {"TripKm", 104.2}});
  });
}

void BodyControlModule::on_power_on() {
  // Lock state is held in the actuator; a module reboot does not move it.
}

bool BodyControlModule::matches(const can::CanFrame& frame, std::uint8_t command) const {
  const auto payload = frame.payload();
  if (predicate_.check_length && !db_.by_id(dbc::kMsgBodyCommand)->dlc_matches(frame)) {
    return false;
  }
  const std::size_t checked = std::min<std::size_t>(predicate_.bytes_checked,
                                                    sizeof kExpectedPrefix);
  if (payload.size() < checked || checked == 0) return false;
  if (payload[0] != command) return false;
  for (std::size_t i = 1; i < checked; ++i) {
    if (payload[i] != kExpectedPrefix[i]) return false;
  }
  return true;
}

void BodyControlModule::actuate(bool unlocked, std::uint8_t command) {
  unlocked_ = unlocked;
  if (unlocked) {
    ++unlock_events_;
  } else {
    ++lock_events_;
  }
  if (actuator_listener_) actuator_listener_(unlocked);
  send_ack(command, true);
}

void BodyControlModule::send_ack(std::uint8_t command, bool ok) {
  const auto* def = db_.by_id(dbc::kMsgBodyAck);
  if (const auto frame = def->encode({{"AckCommand", static_cast<double>(command)},
                                      {"AckResult", ok ? 1.0 : 0.0}})) {
    send(*frame);
  }
}

void BodyControlModule::handle_frame(const can::CanFrame& frame, sim::SimTime) {
  if (frame.id() != dbc::kMsgBodyCommand || frame.is_remote() || frame.length() == 0) return;

  if (predicate_.require_auth) {
    if (verifier_ == nullptr ||
        verifier_->verify_command(frame) != security::VerifyResult::kOk) {
      ++rejected_commands_;
      return;
    }
    const std::uint8_t command = verifier_->last_command();
    if (command == dbc::kCmdUnlock) {
      actuate(true, dbc::kCmdUnlock);
    } else if (command == dbc::kCmdLock) {
      actuate(false, dbc::kCmdLock);
    } else {
      ++rejected_commands_;  // authentic but unknown command
    }
    return;
  }

  if (matches(frame, dbc::kCmdUnlock)) {
    actuate(true, dbc::kCmdUnlock);
    return;
  }
  if (matches(frame, dbc::kCmdLock)) {
    actuate(false, dbc::kCmdLock);
    return;
  }
  ++rejected_commands_;
}

}  // namespace acf::vehicle
