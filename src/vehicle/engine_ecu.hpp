// Engine control module (ECM) model: runs a repeating drive cycle (idle,
// acceleration, cruise, deceleration) and broadcasts the powertrain messages
// the instrument cluster consumes.  Consumes WHEEL_SPEEDS for its idle
// governor — which is the mechanism that makes fuzzed wheel-speed frames
// produce the "erratic engine idling RPM" the paper observed on the target
// vehicle.
#pragma once

#include <memory>
#include <vector>

#include "dbc/target_vehicle_db.hpp"
#include "ecu/ecu.hpp"
#include "obd/obd.hpp"

namespace acf::vehicle {

/// One phase of the repeating drive profile.
struct DrivePhase {
  sim::Duration duration;
  double target_rpm = 800.0;
  double target_speed_kph = 0.0;
  double throttle_pct = 5.0;
};

/// Standard profile used by the signal benches: idle, accelerate, cruise,
/// decelerate, idle (two minutes per lap).
std::vector<DrivePhase> default_drive_cycle();

class EngineEcu final : public ecu::Ecu {
 public:
  EngineEcu(sim::Scheduler& scheduler, can::VirtualBus& bus,
            std::vector<DrivePhase> cycle = default_drive_cycle());

  double rpm() const noexcept { return rpm_; }
  double speed_kph() const noexcept { return speed_kph_; }
  double coolant_temp_c() const noexcept { return coolant_c_; }
  bool mil_on() const noexcept { return dtcs().mil_requested(); }

  /// Peak |rpm delta| between consecutive control ticks over the last
  /// second — the "erratic idle" observable.
  double idle_roughness() const noexcept { return idle_roughness_; }

  std::uint64_t implausible_inputs_seen() const noexcept { return implausible_inputs_; }

  /// The J1979 emissions-diagnostics endpoint behind the OBD port.
  obd::ObdServer& obd() noexcept { return *obd_; }

 private:
  void handle_frame(const can::CanFrame& frame, sim::SimTime time) override;
  void on_power_on() override;
  void control_tick();

  std::vector<DrivePhase> cycle_;
  sim::Duration cycle_length_{0};

  double rpm_ = 800.0;
  double speed_kph_ = 0.0;
  double throttle_pct_ = 5.0;
  double coolant_c_ = 20.0;
  double fuel_pct_ = 82.0;
  double odometer_km_ = 18'204.0;

  // Idle governor disturbance from (possibly fuzzed) wheel-speed inputs.
  double wheel_speed_avg_ = 0.0;
  double governor_disturbance_ = 0.0;
  double idle_roughness_ = 0.0;
  double last_rpm_ = 800.0;
  std::uint64_t implausible_inputs_ = 0;

  dbc::Database db_ = dbc::target_vehicle_database();
  std::unique_ptr<obd::ObdServer> obd_;
};

}  // namespace acf::vehicle
