#include "vehicle/head_unit.hpp"

namespace acf::vehicle {

HeadUnit::HeadUnit(sim::Scheduler& scheduler, can::VirtualBus& bus)
    : Ecu(scheduler, bus, "IVI") {}

bool HeadUnit::send_command(std::uint8_t command) {
  if (signer_ != nullptr) {
    return send(signer_->sign_command(dbc::kMsgBodyCommand, command));
  }
  ++sequence_;
  // Matches the paper's app frame: <cmd> 5F 01 00 <seq> 20 00, DLC 7.
  const std::uint8_t bytes[7] = {command, 0x5F, 0x01, 0x00, sequence_, 0x20, 0x00};
  const auto frame = can::CanFrame::data(dbc::kMsgBodyCommand, bytes);
  return frame && send(*frame);
}

void HeadUnit::handle_frame(const can::CanFrame& frame, sim::SimTime) {
  if (frame.id() != dbc::kMsgBodyAck || frame.length() < 2) return;
  ++acks_seen_;
  last_acked_command_ = frame.payload()[0];
}

}  // namespace acf::vehicle
