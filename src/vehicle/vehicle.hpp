// Vehicle harnesses.
//
//  - Vehicle: the full simulated target vehicle — two CAN buses (powertrain
//    and body) joined by a gateway, with ECM, ABS, instrument cluster, BCM
//    and head unit.  Equivalent to the paper's target car, which "exposes
//    two CAN buses" at the OBD port.
//  - UnlockTestbench: the bench-top three-node rig of Figs. 10-12 (head
//    unit + BCM on one bus; the fuzzer attaches as the malicious third
//    node).
#pragma once

#include <memory>

#include "vehicle/body_control.hpp"
#include "vehicle/engine_ecu.hpp"
#include "vehicle/gateway.hpp"
#include "vehicle/head_unit.hpp"
#include "vehicle/instrument_cluster.hpp"

namespace acf::vehicle {

/// Anti-lock braking module: broadcasts per-wheel speeds derived from the
/// vehicle's road speed (its own sensors in the real car).
class AbsEcu final : public ecu::Ecu {
 public:
  AbsEcu(sim::Scheduler& scheduler, can::VirtualBus& bus, const EngineEcu& engine);

 private:
  void handle_frame(const can::CanFrame& frame, sim::SimTime time) override;

  const EngineEcu& engine_;
  dbc::Database db_ = dbc::target_vehicle_database();
};

struct VehicleConfig {
  can::BusConfig powertrain_bus;
  can::BusConfig body_bus;
  /// Whitelist forwarding (default) vs forward-everything (a legacy
  /// unfiltered gateway, the ablation baseline).
  bool gateway_filtering = true;
  UnlockPredicate unlock_predicate = UnlockPredicate::single_id_and_byte();
  std::vector<DrivePhase> drive_cycle = default_drive_cycle();
};

class Vehicle {
 public:
  explicit Vehicle(sim::Scheduler& scheduler, VehicleConfig config = {});

  Vehicle(const Vehicle&) = delete;
  Vehicle& operator=(const Vehicle&) = delete;

  can::VirtualBus& powertrain_bus() noexcept { return *powertrain_; }
  can::VirtualBus& body_bus() noexcept { return *body_; }

  EngineEcu& engine() noexcept { return *engine_; }
  AbsEcu& abs() noexcept { return *abs_; }
  InstrumentCluster& cluster() noexcept { return *cluster_; }
  BodyControlModule& bcm() noexcept { return *bcm_; }
  HeadUnit& head_unit() noexcept { return *head_unit_; }
  GatewayEcu& gateway() noexcept { return *gateway_; }

 private:
  std::unique_ptr<can::VirtualBus> powertrain_;
  std::unique_ptr<can::VirtualBus> body_;
  std::unique_ptr<EngineEcu> engine_;
  std::unique_ptr<AbsEcu> abs_;
  std::unique_ptr<InstrumentCluster> cluster_;
  std::unique_ptr<BodyControlModule> bcm_;
  std::unique_ptr<HeadUnit> head_unit_;
  std::unique_ptr<GatewayEcu> gateway_;
};

/// The bench-top unlock rig (paper Figs. 10-12): one bus, head unit and BCM.
/// Predicates with require_auth automatically install a shared session key
/// on both ends.
class UnlockTestbench {
 public:
  UnlockTestbench(sim::Scheduler& scheduler,
                  UnlockPredicate predicate = UnlockPredicate::single_id_and_byte(),
                  can::BusConfig bus_config = {});

  UnlockTestbench(const UnlockTestbench&) = delete;
  UnlockTestbench& operator=(const UnlockTestbench&) = delete;

  can::VirtualBus& bus() noexcept { return *bus_; }
  HeadUnit& head_unit() noexcept { return *head_unit_; }
  BodyControlModule& bcm() noexcept { return *bcm_; }

 private:
  std::unique_ptr<can::VirtualBus> bus_;
  std::unique_ptr<HeadUnit> head_unit_;
  std::unique_ptr<BodyControlModule> bcm_;
};

}  // namespace acf::vehicle
