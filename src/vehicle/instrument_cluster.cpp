#include "vehicle/instrument_cluster.hpp"

#include <cmath>

namespace acf::vehicle {

namespace {
constexpr std::uint32_t kDtcDisplayFault = 0x9A0200;
constexpr std::uint32_t kDtcImplausibleSignal = 0x9A0301;
// The legacy factory-test LUT has 16 entries; arguments are masked with 0x1F
// — the off-by-one mask is the injected defect (indices 16..31 read past the
// table and corrupt the adjacent NV-memory block).
constexpr std::uint8_t kFactoryTestModeBase = 0xF0;
constexpr std::size_t kFactoryLutSize = 16;
}  // namespace

InstrumentCluster::InstrumentCluster(sim::Scheduler& scheduler, can::VirtualBus& bus)
    : Ecu(scheduler, bus, "CLUSTER") {
  enable_uds(dbc::kUdsClusterRequest, dbc::kUdsClusterResponse);
  uds_server()->set_did(0xF190, {'W', 'V', 'W', 'Z', 'Z', 'Z', '1', 'K', 'Z', 'A',
                                 'W', '0', '0', '0', '0', '1', '7'});
  uds_server()->set_did(0xF195, {'1', '.', '4', '.', '2'});
  uds_server()->set_did(0x0200, {0x00}, /*writable=*/true);  // config block

  // XCP instrumentation (see the memory-map comment in the header).
  xcp::XcpMemoryMap memory;
  memory.read_byte = [this](std::uint32_t address) -> std::optional<std::uint8_t> {
    auto le_byte = [](std::int64_t value, std::uint32_t offset) {
      return static_cast<std::uint8_t>((static_cast<std::uint64_t>(value) >> (8 * offset)) &
                                       0xFF);
    };
    if (address >= kXcpAddrRpm && address < kXcpAddrRpm + 4) {
      return le_byte(std::llround(rpm_gauge_), address - kXcpAddrRpm);
    }
    if (address >= kXcpAddrSpeed && address < kXcpAddrSpeed + 4) {
      return le_byte(std::llround(speed_gauge_ * 10.0), address - kXcpAddrSpeed);
    }
    if (address == kXcpAddrFlags) {
      return static_cast<std::uint8_t>((mil_on_ ? 1 : 0) | (nv_crash_latched_ ? 2 : 0));
    }
    if (address >= kXcpAddrWarnCount && address < kXcpAddrWarnCount + 4) {
      return le_byte(static_cast<std::int64_t>(warning_sounds_),
                     address - kXcpAddrWarnCount);
    }
    return std::nullopt;
  };
  memory.write_byte = [this](std::uint32_t address, std::uint8_t value) {
    // Only the status-flag byte is calibration-writable; that is already
    // one bit too many from a security standpoint (an attacker can douse
    // the MIL remotely — see attacks::XcpTamper).
    if (address != kXcpAddrFlags) return false;
    mil_on_ = (value & 1) != 0;
    return true;
  };
  xcp_ = std::make_unique<xcp::XcpSlave>(
      kXcpRxId, kXcpTxId, std::move(memory),
      [this](const can::CanFrame& frame) { return send(frame); });
}

void InstrumentCluster::on_power_on() {
  // Volatile state resets; the NV crash latch deliberately does not (the
  // paper power-cycled the real cluster and the "crash" text remained).
  rpm_gauge_ = speed_gauge_ = coolant_gauge_ = fuel_gauge_ = 0.0;
  mil_on_ = coolant_warning_ = abs_warning_ = airbag_warning_ = false;
  oil_warning_ = battery_warning_ = false;
  display_text_ = nv_crash_latched_ ? "CrAsH" : "";
}

bool InstrumentCluster::any_warning_lit() const noexcept {
  return mil_on_ || coolant_warning_ || abs_warning_ || airbag_warning_ || oil_warning_ ||
         battery_warning_;
}

void InstrumentCluster::set_gauge(double& gauge, double value) {
  needle_travel_ += std::fabs(value - gauge);
  gauge = value;
}

void InstrumentCluster::note_implausible(const char* what) {
  ++implausible_values_;
  // The cluster reacts like the real one did: MIL on, audible warning.
  if (!mil_on_) ++warning_sounds_;
  mil_on_ = true;
  if (implausible_values_ % 32 == 1) {
    dtcs().raise(kDtcImplausibleSignal, std::string("implausible signal: ") + what);
  }
}

void InstrumentCluster::handle_frame(const can::CanFrame& frame, sim::SimTime time) {
  if (frame.is_remote()) return;
  if (xcp_) xcp_->handle_frame(frame, time);

  switch (frame.id()) {
    case dbc::kMsgEngineData: {
      const auto* def = db_.by_id(dbc::kMsgEngineData);
      const auto values = def->decode(frame);
      if (const auto it = values.find("EngineRPM"); it != values.end()) {
        // No plausibility gate: a negative or absurd RPM is displayed as-is.
        set_gauge(rpm_gauge_, it->second);
        if (!def->signal("EngineRPM")->in_declared_range(it->second)) {
          note_implausible("EngineRPM");
        }
      }
      if (const auto it = values.find("CoolantTempC"); it != values.end()) {
        set_gauge(coolant_gauge_, it->second);
      }
      break;
    }
    case dbc::kMsgVehicleSpeed: {
      const auto* def = db_.by_id(dbc::kMsgVehicleSpeed);
      const auto values = def->decode(frame);
      if (const auto it = values.find("SpeedKph"); it != values.end()) {
        set_gauge(speed_gauge_, it->second);
        if (!def->signal("SpeedKph")->in_declared_range(it->second)) {
          note_implausible("SpeedKph");
        }
      }
      break;
    }
    case dbc::kMsgPowertrainStatus: {
      const auto* def = db_.by_id(dbc::kMsgPowertrainStatus);
      const auto values = def->decode(frame);
      if (const auto it = values.find("FuelLevelPct"); it != values.end()) {
        set_gauge(fuel_gauge_, it->second);
      }
      break;
    }
    case dbc::kMsgTelltales: {
      const auto* def = db_.by_id(dbc::kMsgTelltales);
      const auto values = def->decode(frame);
      auto bit = [&values](const char* signal_name) {
        const auto it = values.find(signal_name);
        return it != values.end() && it->second >= 0.5;
      };
      const bool was_warning = any_warning_lit();
      mil_on_ = bit("MilOn") || mil_on_;
      oil_warning_ = bit("OilWarning");
      battery_warning_ = bit("BatteryWarning");
      coolant_warning_ = bit("CoolantWarning");
      abs_warning_ = bit("AbsWarning");
      airbag_warning_ = bit("AirbagWarning");
      if (!was_warning && any_warning_lit()) ++warning_sounds_;
      break;
    }
    case dbc::kMsgClusterDisplay:
      handle_display_command(frame);
      break;
    default:
      break;
  }
}

void InstrumentCluster::handle_display_command(const can::CanFrame& frame) {
  // Once the NV block is corrupted the display renders the corrupted
  // pattern regardless of incoming commands (power cycling recovers the
  // firmware — the Ecu crash flag — but not the display: paper Fig. 9).
  if (nv_crash_latched_) return;
  const auto payload = frame.payload();
  if (payload.empty()) return;
  const std::uint8_t mode = payload[0];

  if (mode < 0x06) {
    // Normal display modes: odometer / trip / text pages.
    const auto* def = db_.by_id(dbc::kMsgClusterDisplay);
    const auto values = def->decode(frame);
    if (const auto it = values.find("OdometerKm"); it != values.end()) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.0f", it->second);
      display_text_ = buf;
    }
    return;
  }

  if (mode >= kFactoryTestModeBase) {
    // Legacy factory-test handler (undocumented, exactly the kind of
    // untested code path §III-B3 of the paper warns about).
    if (payload.size() < 2) return;
    const std::size_t index = payload[1] & 0x1F;  // DEFECT: mask admits 0..31
    if (index >= kFactoryLutSize) {
      // Out-of-bounds LUT read corrupts the adjacent NV block: the firmware
      // wedges and the corrupted display pattern reads "CrAsH".  This
      // persists across power cycles.
      nv_crash_latched_ = true;
      display_text_ = "CrAsH";
      dtcs().raise(kDtcDisplayFault, "NV memory corrupted by factory-test handler");
      crash("factory-test LUT overrun: mode=" + std::to_string(mode) +
            " index=" + std::to_string(index));
      return;
    }
    display_text_ = "test" + std::to_string(index);
  }
  // Modes 0x06..0xEF are ignored (reserved).
}

}  // namespace acf::vehicle
