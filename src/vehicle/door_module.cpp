#include "vehicle/door_module.hpp"

namespace acf::vehicle {

std::optional<std::vector<std::uint8_t>> DoorLockModule::on_header(std::uint8_t id) {
  if (id != kStatusFrameId) return std::nullopt;
  return std::vector<std::uint8_t>{
      static_cast<std::uint8_t>(unlocked_ ? 1 : 0),
      static_cast<std::uint8_t>(actuations_ & 0xFF),
  };
}

void DoorLockModule::on_frame(const lin::LinFrame& frame, sim::SimTime) {
  if (frame.id != kCommandFrameId || frame.data.empty()) return;
  const std::uint8_t command = frame.data[0];
  if (command == kLinCmdUnlock && !unlocked_) {
    unlocked_ = true;
    ++actuations_;
  } else if (command == kLinCmdLock && unlocked_) {
    unlocked_ = false;
    ++actuations_;
  }
}

}  // namespace acf::vehicle
