// Body Control Module: owns the door-lock actuator (the testbench's LED —
// off = locked, on = unlocked), answers BODY_COMMAND frames and emits the
// BODY_ACK unlock acknowledgement the paper added to its bench so the fuzzer
// could detect success.
//
// The unlock-match predicate is configurable because Table V is exactly a
// comparison of predicates: matching on id + command byte alone, versus also
// requiring the correct DLC, versus (the paper's §VII projection) further
// payload bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "dbc/target_vehicle_db.hpp"
#include "ecu/ecu.hpp"
#include "security/mac.hpp"

namespace acf::vehicle {

/// How strictly BODY_COMMAND frames are validated before actuation.
struct UnlockPredicate {
  /// Number of payload bytes that must match the expected command prefix
  /// (1 = command byte only, as in the paper's first Table V row).
  std::uint8_t bytes_checked = 1;
  /// Require the exact DLC (7) — the paper's one-line hardening change.
  bool check_length = false;
  /// Require a valid truncated MAC + fresh rolling counter (the defense
  /// ablation; needs a shared key installed on BCM and head unit).
  bool require_auth = false;

  /// Canonical predicates from the paper.
  static UnlockPredicate single_id_and_byte() { return {1, false, false}; }
  static UnlockPredicate id_byte_and_length() { return {1, true, false}; }
  static UnlockPredicate authenticated() { return {1, true, true}; }
};

class BodyControlModule final : public ecu::Ecu {
 public:
  BodyControlModule(sim::Scheduler& scheduler, can::VirtualBus& bus,
                    UnlockPredicate predicate = UnlockPredicate::single_id_and_byte());

  /// Door state; the testbench LED: on (true) = unlocked.
  bool unlocked() const noexcept { return unlocked_; }
  bool lock_led_on() const noexcept { return unlocked_; }

  std::uint64_t unlock_events() const noexcept { return unlock_events_; }
  std::uint64_t lock_events() const noexcept { return lock_events_; }
  std::uint64_t rejected_commands() const noexcept { return rejected_commands_; }

  void set_predicate(UnlockPredicate predicate) noexcept { predicate_ = predicate; }
  const UnlockPredicate& predicate() const noexcept { return predicate_; }

  /// Re-locks without emitting an ack (used between Table V trials).
  void force_lock() noexcept { unlocked_ = false; }

  /// Installs the shared authentication key (enables require_auth
  /// predicates).  The head unit must hold the same key.
  void install_auth_key(const security::Key128& key) {
    verifier_ = std::make_unique<security::FrameAuthenticator>(key);
  }
  const security::FrameAuthenticator* verifier() const noexcept { return verifier_.get(); }

  /// Called with the new state whenever a command actuates the lock — the
  /// hook a downstream LIN door segment (or a test "door-lock sensor")
  /// subscribes to.
  void set_actuator_listener(std::function<void(bool unlocked)> listener) {
    actuator_listener_ = std::move(listener);
  }

 private:
  void actuate(bool unlocked, std::uint8_t command);
  void handle_frame(const can::CanFrame& frame, sim::SimTime time) override;
  void on_power_on() override;
  bool matches(const can::CanFrame& frame, std::uint8_t command) const;
  void send_ack(std::uint8_t command, bool ok);

  dbc::Database db_ = dbc::target_vehicle_database();
  UnlockPredicate predicate_;
  bool unlocked_ = false;
  double odometer_km_ = 18'204.0;
  std::uint64_t unlock_events_ = 0;
  std::uint64_t lock_events_ = 0;
  std::uint64_t rejected_commands_ = 0;
  std::unique_ptr<security::FrameAuthenticator> verifier_;
  std::function<void(bool)> actuator_listener_;
};

}  // namespace acf::vehicle
