#include "vehicle/gateway.hpp"

#include "dbc/target_vehicle_db.hpp"

namespace acf::vehicle {

GatewayEcu::GatewayEcu(can::VirtualBus& powertrain, can::VirtualBus& body,
                       ForwardRule powertrain_to_body, ForwardRule body_to_powertrain)
    : powertrain_(powertrain), body_(body), p_to_b_(std::move(powertrain_to_body)),
      b_to_p_(std::move(body_to_powertrain)), powertrain_port_(*this, true),
      body_port_(*this, false) {
  powertrain_node_ = powertrain_.attach(powertrain_port_, "GATEWAY.pt");
  body_node_ = body_.attach(body_port_, "GATEWAY.body");
}

GatewayEcu::~GatewayEcu() {
  powertrain_.detach(powertrain_node_);
  body_.detach(body_node_);
}

ForwardRule GatewayEcu::default_powertrain_to_body() {
  ForwardRule rule;
  for (std::uint32_t id : {dbc::kMsgEngineData, dbc::kMsgVehicleSpeed, dbc::kMsgWheelSpeeds,
                           dbc::kMsgPowertrainStatus, dbc::kMsgTelltales,
                           dbc::kUdsEngineResponse}) {
    rule.whitelist.add(can::IdMaskFilter::exact(id));
  }
  return rule;
}

ForwardRule GatewayEcu::default_body_to_powertrain() {
  ForwardRule rule;
  // Only tester->ECM diagnostics cross into the powertrain segment: the
  // physical UDS/OBD request id and the J1979 functional broadcast.
  rule.whitelist.add(can::IdMaskFilter::exact(dbc::kUdsEngineRequest));
  rule.whitelist.add(can::IdMaskFilter::exact(0x7DF));
  return rule;
}

void GatewayEcu::set_rules(ForwardRule powertrain_to_body, ForwardRule body_to_powertrain) {
  p_to_b_ = std::move(powertrain_to_body);
  b_to_p_ = std::move(body_to_powertrain);
}

void GatewayEcu::forward(const can::CanFrame& frame, sim::SimTime, bool from_powertrain) {
  if (from_powertrain) {
    if (p_to_b_.allows(frame)) {
      body_.submit(body_node_, frame);
      ++stats_.forwarded_p_to_b;
    } else {
      ++stats_.blocked_p_to_b;
    }
  } else {
    if (b_to_p_.allows(frame)) {
      powertrain_.submit(powertrain_node_, frame);
      ++stats_.forwarded_b_to_p;
    } else {
      ++stats_.blocked_b_to_p;
    }
  }
}

}  // namespace acf::vehicle
