// Instrument cluster model: gauges, telltales (MILs), warning buzzer and a
// segment display.
//
// Deliberately reproduces two properties of the real component the paper
// fuzzed:
//  1. No plausibility filtering on gauge inputs — the needle shows whatever
//     decodes from the frame, including a negative RPM (Fig. 8);
//  2. An injected firmware defect in a legacy factory-test display handler:
//     an out-of-range mode/argument pair corrupts non-volatile state and
//     latches a permanent "CrAsH" display that survives power cycling
//     (Fig. 9: "Unfortunately the crash message would not clear").
#pragma once

#include <memory>
#include <string>

#include "dbc/target_vehicle_db.hpp"
#include "ecu/ecu.hpp"
#include "xcp/xcp.hpp"

namespace acf::vehicle {

class InstrumentCluster final : public ecu::Ecu {
 public:
  InstrumentCluster(sim::Scheduler& scheduler, can::VirtualBus& bus);

  // Gauge needles (displayed values, not plausibility-checked).
  double rpm_gauge() const noexcept { return rpm_gauge_; }
  double speed_gauge() const noexcept { return speed_gauge_; }
  double coolant_gauge() const noexcept { return coolant_gauge_; }
  double fuel_gauge() const noexcept { return fuel_gauge_; }

  // Telltales and warnings.
  bool mil_on() const noexcept { return mil_on_; }
  bool any_warning_lit() const noexcept;
  std::uint64_t warning_sounds() const noexcept { return warning_sounds_; }

  /// Cumulative needle travel (sum of |gauge deltas|) — the "erratic gauge
  /// needles" observable.
  double needle_travel() const noexcept { return needle_travel_; }

  /// Text on the segment display ("" when blank; "CrAsH" once latched).
  const std::string& display_text() const noexcept { return display_text_; }

  /// True once the defect has corrupted NV memory.  Survives power cycles.
  bool crash_latched() const noexcept { return nv_crash_latched_; }

  /// Count of frames whose decoded signals violated their declared range.
  std::uint64_t implausible_values_seen() const noexcept { return implausible_values_; }

  /// The XCP calibration/measurement endpoint (development instrumentation
  /// left enabled — the monitoring channel of [15] and the attack surface
  /// the paper warns about).  Memory map, little-endian:
  ///   0x1000  rpm gauge   (i32, rpm)        read-only
  ///   0x1004  speed gauge (i32, 0.1 km/h)   read-only
  ///   0x1008  status flags (u8: b0=MIL, b1=crash latch)  READ-WRITE
  ///   0x100C  warning sound count (u32)     read-only
  xcp::XcpSlave& xcp() noexcept { return *xcp_; }
  static constexpr std::uint32_t kXcpRxId = 0x6C0;
  static constexpr std::uint32_t kXcpTxId = 0x6C1;
  static constexpr std::uint32_t kXcpAddrRpm = 0x1000;
  static constexpr std::uint32_t kXcpAddrSpeed = 0x1004;
  static constexpr std::uint32_t kXcpAddrFlags = 0x1008;
  static constexpr std::uint32_t kXcpAddrWarnCount = 0x100C;

 private:
  void handle_frame(const can::CanFrame& frame, sim::SimTime time) override;
  void on_power_on() override;
  void handle_display_command(const can::CanFrame& frame);
  void set_gauge(double& gauge, double value);
  void note_implausible(const char* what);

  dbc::Database db_ = dbc::target_vehicle_database();

  double rpm_gauge_ = 0.0;
  double speed_gauge_ = 0.0;
  double coolant_gauge_ = 0.0;
  double fuel_gauge_ = 0.0;
  double needle_travel_ = 0.0;

  bool mil_on_ = false;
  bool coolant_warning_ = false;
  bool abs_warning_ = false;
  bool airbag_warning_ = false;
  bool oil_warning_ = false;
  bool battery_warning_ = false;
  std::uint64_t warning_sounds_ = 0;
  std::uint64_t implausible_values_ = 0;

  std::string display_text_;
  // "Non-volatile" state: survives power cycles by design.
  bool nv_crash_latched_ = false;

  std::unique_ptr<xcp::XcpSlave> xcp_;
};

}  // namespace acf::vehicle
