#include "can/bitstream.hpp"

namespace acf::can {

void append_bits(BitVec& bits, std::uint32_t value, int width) {
  for (int shift = width - 1; shift >= 0; --shift) {
    bits.push_back(static_cast<std::uint8_t>((value >> shift) & 1));
  }
}

std::optional<std::uint32_t> read_bits(std::span<const std::uint8_t> bits, std::size_t& pos,
                                       int width) {
  if (pos + static_cast<std::size_t>(width) > bits.size()) return std::nullopt;
  std::uint32_t value = 0;
  for (int i = 0; i < width; ++i) {
    value = (value << 1) | (bits[pos++] & 1u);
  }
  return value;
}

BitVec stuff(std::span<const std::uint8_t> bits) {
  BitVec out;
  out.reserve(bits.size() + bits.size() / 5 + 1);
  int run = 0;
  std::uint8_t last = 2;  // neither 0 nor 1
  for (std::uint8_t bit : bits) {
    bit &= 1;
    out.push_back(bit);
    if (bit == last) {
      ++run;
    } else {
      last = bit;
      run = 1;
    }
    if (run == 5) {
      const std::uint8_t stuffed = static_cast<std::uint8_t>(1 - last);
      out.push_back(stuffed);
      last = stuffed;
      run = 1;
    }
  }
  return out;
}

std::optional<BitVec> unstuff(std::span<const std::uint8_t> bits) {
  BitVec out;
  out.reserve(bits.size());
  int run = 0;
  std::uint8_t last = 2;
  bool expect_stuff = false;
  for (std::uint8_t raw : bits) {
    const std::uint8_t bit = raw & 1;
    if (expect_stuff) {
      if (bit == last) return std::nullopt;  // stuffing violation: 6 equal bits
      expect_stuff = false;
      last = bit;
      run = 1;
      continue;  // stuff bit dropped
    }
    out.push_back(bit);
    if (bit == last) {
      ++run;
    } else {
      last = bit;
      run = 1;
    }
    if (run == 5) expect_stuff = true;
  }
  return out;
}

std::size_t count_stuff_bits(std::span<const std::uint8_t> bits) {
  std::size_t inserted = 0;
  int run = 0;
  std::uint8_t last = 2;
  for (std::uint8_t raw : bits) {
    const std::uint8_t bit = raw & 1;
    if (bit == last) {
      ++run;
    } else {
      last = bit;
      run = 1;
    }
    if (run == 5) {
      ++inserted;
      last = static_cast<std::uint8_t>(1 - last);
      run = 1;
    }
  }
  return inserted;
}

}  // namespace acf::can
