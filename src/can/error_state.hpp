// CAN fault confinement (Bosch CAN 2.0 §8): every node keeps a transmit and
// a receive error counter and moves between error-active, error-passive and
// bus-off.  The paper observed real components failing under fuzz; modelling
// fault confinement lets the oracles detect a node that has been driven off
// the bus.
#pragma once

#include <cstdint>

namespace acf::can {

enum class ErrorMode : std::uint8_t {
  kErrorActive,   // normal operation, sends active error flags
  kErrorPassive,  // TEC or REC > 127; sends passive error flags
  kBusOff,        // TEC > 255; may not transmit at all
};

const char* to_string(ErrorMode mode) noexcept;

/// Transmit/receive error counters with the Bosch increment/decrement rules.
class ErrorState {
 public:
  ErrorMode mode() const noexcept;
  std::uint16_t tec() const noexcept { return tec_; }
  std::uint16_t rec() const noexcept { return rec_; }
  bool bus_off() const noexcept { return mode() == ErrorMode::kBusOff; }

  /// Transmitter detected an error in its own frame: TEC += 8.
  void on_tx_error() noexcept;
  /// Receiver detected an error: REC += 1 (the +8 "primary detector" rule is
  /// folded into on_rx_error_primary).
  void on_rx_error() noexcept;
  void on_rx_error_primary() noexcept;
  /// Successful transmission: TEC -= 1 (floor 0).
  void on_tx_success() noexcept;
  /// Successful reception: REC -= 1 (floor 0; >127 resets into 119..127 band,
  /// we use 127).
  void on_rx_success() noexcept;

  /// Bus-off recovery (128 × 11 recessive bits on a real bus; here the bus
  /// model invokes it after the equivalent idle time).
  void reset() noexcept;

  /// Total error events, for statistics.
  std::uint64_t tx_error_events() const noexcept { return tx_errors_; }
  std::uint64_t rx_error_events() const noexcept { return rx_errors_; }
  /// Times this controller entered bus-off.  Cumulative — reset() (recovery)
  /// does not clear it, so an observer polling slower than the recovery
  /// window still sees that fault confinement fired.
  std::uint64_t bus_off_events() const noexcept { return bus_off_events_; }

 private:
  std::uint16_t tec_ = 0;
  std::uint16_t rec_ = 0;
  std::uint64_t tx_errors_ = 0;
  std::uint64_t rx_errors_ = 0;
  std::uint64_t bus_off_events_ = 0;
};

}  // namespace acf::can
