// Bit-sequence helpers for the wire codec: building a frame's bit stream and
// applying / removing CAN bit stuffing (a stuff bit of opposite polarity is
// inserted after every run of five equal bits, SOF through CRC).
//
// The fuzzer's data-link-layer ablation (bench_ablation_bitlevel) mutates
// frames at exactly this representation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace acf::can {

/// A sequence of bits; each element is 0 (dominant) or 1 (recessive).
using BitVec = std::vector<std::uint8_t>;

/// Appends `width` bits of `value`, MSB first.
void append_bits(BitVec& bits, std::uint32_t value, int width);

/// Reads `width` bits MSB-first starting at `pos`; advances pos.
/// Returns nullopt if the stream is too short.
std::optional<std::uint32_t> read_bits(std::span<const std::uint8_t> bits, std::size_t& pos,
                                       int width);

/// Inserts stuff bits: after five consecutive equal bits, a bit of opposite
/// value is inserted.  Stuff bits themselves count toward following runs.
BitVec stuff(std::span<const std::uint8_t> bits);

/// Removes stuff bits.  Returns nullopt on a stuffing violation (six equal
/// consecutive bits), which on a real bus raises an error frame.
std::optional<BitVec> unstuff(std::span<const std::uint8_t> bits);

/// Number of stuff bits `stuff` would insert (without materialising them).
std::size_t count_stuff_bits(std::span<const std::uint8_t> bits);

}  // namespace acf::can
