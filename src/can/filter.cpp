#include "can/filter.hpp"

// Header-only logic; this TU anchors the library target.
namespace acf::can {}
