// VirtualBus: a discrete-event model of a single CAN bus segment.
//
// Fidelity targets (what the paper's experiments depend on):
//  - frames occupy the bus for their exact stuffed wire length at the
//    configured bitrate (500 kb/s default), so injection rates, bus load and
//    time-to-event measurements behave like the physical bench;
//  - arbitration: when several nodes contend for an idle bus, the lowest
//    arbitration rank (priority) wins and losers retransmit;
//  - broadcast: every accepted frame is delivered exactly once to every
//    other powered node whose acceptance filters match;
//  - fault confinement: per-node TEC/REC with error-active/passive/bus-off,
//    plus optional random frame corruption for failure-injection tests.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "can/error_state.hpp"
#include "can/filter.hpp"
#include "can/frame.hpp"
#include "can/wire_codec.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace acf::can {

/// Handle identifying an attached node.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// One completed transmission as seen by a batch-delivered tap.
struct BusDelivery {
  CanFrame frame;
  sim::SimTime time{0};
};

/// Interface implemented by everything attached to a bus (ECUs, the fuzzer,
/// capture taps, oracles).
class BusListener {
 public:
  virtual ~BusListener() = default;

  /// A frame transmitted by another node has completed successfully.
  virtual void on_frame(const CanFrame& frame, sim::SimTime time) = 0;

  /// Batched delivery for accepts-all listen-only taps (see
  /// VirtualBus::attach with `batched`): a contiguous run of completed
  /// transmissions, in bus order, handed over when the bus's delivery slab
  /// fills or is flushed.  Default unpacks into per-frame on_frame calls, so
  /// a tap opting in observes exactly the frames it would have seen live —
  /// only the callback instant moves.
  virtual void on_frame_batch(std::span<const BusDelivery> batch) {
    for (const BusDelivery& delivery : batch) on_frame(delivery.frame, delivery.time);
  }

  /// An error frame was observed on the bus (any node's).
  virtual void on_error_frame(sim::SimTime time) { (void)time; }

  /// This node's own pending frame was transmitted successfully.
  virtual void on_tx_complete(const CanFrame& frame, sim::SimTime time) {
    (void)frame;
    (void)time;
  }
};

struct BusConfig {
  std::uint32_t bitrate = kDefaultBitrate;
  std::uint32_t fd_data_bitrate = kDefaultFdDataBitrate;
  /// Probability that any given transmission is hit by a (simulated) bit
  /// error and aborted with an error frame.  0 = clean bus.
  double corruption_probability = 0.0;
  /// Nodes that reach bus-off re-join after the standard 128 x 11 recessive
  /// bit times when true; stay off forever when false.
  bool auto_bus_off_recovery = true;
  /// Seed for the bus's own randomness (corruption decisions only).
  std::uint64_t seed = 0xb05b05;
  /// Per-node transmit queue bound; a submit beyond this is dropped and
  /// counted (real controllers have small mailbox sets).
  std::size_t tx_queue_limit = 64;
};

struct BusStats {
  std::uint64_t frames_submitted = 0;
  std::uint64_t frames_delivered = 0;  // successful transmissions
  std::uint64_t deliveries = 0;        // per-receiver deliveries
  std::uint64_t error_frames = 0;
  std::uint64_t drops_bus_off = 0;
  std::uint64_t drops_queue_full = 0;
  std::uint64_t arbitration_contests = 0;  // starts with >1 contender
  sim::Duration busy_time{0};

  /// Fraction of elapsed simulated time the bus was busy.
  double load(sim::SimTime now) const noexcept {
    if (now.count() <= 0) return 0.0;
    return sim::to_seconds(busy_time) / sim::to_seconds(now);
  }
};

class VirtualBus {
 public:
  explicit VirtualBus(sim::Scheduler& scheduler, BusConfig config = {});
  ~VirtualBus() { flush_deliveries(); }
  VirtualBus(const VirtualBus&) = delete;
  VirtualBus& operator=(const VirtualBus&) = delete;

  /// Attaches a node.  `listen_only` taps never transmit and do not ACK.
  /// The listener must outlive the bus or be detached first.
  /// `batched` opts an accepts-all listen-only tap into slab delivery: its
  /// frames accumulate in a contiguous per-bus arena and arrive through
  /// on_frame_batch when the slab fills or flush_deliveries() runs (ignored
  /// unless the node is listen-only with an empty filter bank).
  NodeId attach(BusListener& listener, std::string name, FilterBank filters = {},
                bool listen_only = false, bool batched = false);
  void detach(NodeId id);

  /// Hands any frames sitting in the delivery slab to batched taps now.
  /// Batched taps call this before reading their own capture state.
  void flush_deliveries();

  /// Moves a tap between slab and immediate delivery (same eligibility rules
  /// as attach; pending slab frames are flushed first).
  void set_batched(NodeId id, bool batched);

  /// Queues a frame for transmission.  Returns false if the node is
  /// detached, powered off, listen-only, bus-off, or its queue is full.
  bool submit(NodeId sender, const CanFrame& frame);

  /// Clears a node's pending transmissions (e.g. on ECU reset).
  void flush_tx_queue(NodeId id);

  /// Powers a node on/off.  Off nodes neither receive nor transmit and
  /// their queue is flushed.
  void set_power(NodeId id, bool on);
  bool powered(NodeId id) const;

  /// Deterministic fault injection: the next `count` transmissions won by
  /// `id` are hit by a bus error (same confinement path as random
  /// corruption — TEC += 8, error frame broadcast, retransmission).  Lets
  /// tests drive a chosen node to error-passive/bus-off without relying on
  /// the bus-wide corruption_probability dice.
  void force_tx_errors(NodeId id, std::uint32_t count);
  std::uint32_t forced_tx_errors_remaining(NodeId id) const;

  /// Injects a standalone error frame (a glitched/adversarial error flag on
  /// the wire): every powered node observes it and takes the receiver-side
  /// REC hit.  Does not occupy bus time — it models the six dominant bits an
  /// attacker can assert during inter-frame space.
  void inject_error_frame();

  const ErrorState& error_state(NodeId id) const;
  /// True while the node sits out the 128x11-bit bus-off recovery window.
  bool bus_off_recovering(NodeId id) const;
  std::size_t pending(NodeId id) const;
  const std::string& node_name(NodeId id) const;
  std::size_t node_count() const noexcept;

  const BusStats& stats() const noexcept { return stats_; }

  /// Adds this bus's lifetime delivery/error totals into `can.bus.*`
  /// registry counters; worlds call it once at trial end, so the aggregate
  /// is a deterministic sum of per-trial totals.
  void publish_metrics(metrics::Registry& registry) const;

  const BusConfig& config() const noexcept { return config_; }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  bool busy() const noexcept { return busy_; }

 private:
  /// Fixed-capacity transmit ring: one contiguous arena per node, allocated
  /// once at first use (capacity = tx_queue_limit), so the steady-state
  /// submit/pop cycle never touches the allocator the way a deque's segment
  /// churn does.
  class TxRing {
   public:
    bool empty() const noexcept { return count_ == 0; }
    std::size_t size() const noexcept { return count_; }
    const CanFrame& front() const noexcept { return slots_[head_]; }
    void push_back(const CanFrame& frame, std::size_t capacity) {
      if (slots_ == nullptr) {
        capacity_ = capacity;
        slots_ = std::make_unique<CanFrame[]>(capacity_);
      }
      slots_[(head_ + count_) % capacity_] = frame;
      ++count_;
    }
    void pop_front() noexcept {
      head_ = (head_ + 1) % capacity_;
      --count_;
    }
    void clear() noexcept {
      head_ = 0;
      count_ = 0;
    }

   private:
    std::unique_ptr<CanFrame[]> slots_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  struct Node {
    BusListener* listener = nullptr;  // nullptr after detach
    std::string name;
    FilterBank filters;
    bool listen_only = false;
    bool batched = false;
    bool powered = true;
    bool in_bus_off_recovery = false;
    std::uint32_t forced_tx_errors = 0;
    ErrorState errors;
    TxRing tx_queue;
  };

  void request_contest();
  void run_contest();
  void complete_transmission(NodeId winner);
  void begin_bus_off_recovery(NodeId id);
  bool can_transmit(const Node& node) const noexcept;
  sim::Duration frame_duration(const CanFrame& frame) const;
  void refresh_fanout();
  void note_tx_queue_emptied() noexcept { --tx_pending_nodes_; }

  sim::Scheduler& scheduler_;
  BusConfig config_;
  util::Rng rng_;
  std::vector<Node> nodes_;
  BusStats stats_;
  bool busy_ = false;
  bool contest_pending_ = false;

  /// Receiver fan-out cache: ids of powered, attached, non-batched nodes, in
  /// attach order.  Rebuilt lazily after attach/detach/set_power; entries are
  /// re-validated during delivery so callbacks may power nodes down mid-run.
  std::vector<NodeId> fanout_;
  std::vector<NodeId> batch_taps_;  // powered, attached, batched nodes
  bool fanout_dirty_ = true;

  /// Number of nodes with a non-empty tx queue: lets the bus skip scheduling
  /// arbitration-contest events that could only no-op.
  std::size_t tx_pending_nodes_ = 0;

  /// Delivery slab for batched taps (arena reused between flushes).
  std::vector<BusDelivery> delivery_slab_;
  static constexpr std::size_t kDeliverySlabCapacity = 512;
};

}  // namespace acf::can
