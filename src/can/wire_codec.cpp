#include "can/wire_codec.hpp"

#include <vector>

#include "can/crc.hpp"

namespace acf::can {

namespace {

// Fixed-form tail after the stuffed region: CRC delimiter, ACK slot,
// ACK delimiter, EOF (7 recessive bits).
constexpr std::size_t kTailBits = 1 + 1 + 1 + 7;
constexpr std::size_t kInterframeSpace = 3;

// The frame's bit layout is emitted through a sink so the materialising
// encoder (BitVec) and the allocation-free length counter below share one
// definition of the wire format.
template <typename Sink>
void emit_value(Sink& sink, std::uint32_t value, int width) {
  for (int shift = width - 1; shift >= 0; --shift) {
    sink(static_cast<std::uint8_t>((value >> shift) & 1));
  }
}

template <typename Sink>
void emit_header_and_data(Sink& sink, const CanFrame& frame) {
  sink(0);  // SOF, dominant
  if (!frame.is_extended()) {
    emit_value(sink, frame.id(), 11);
    sink(frame.is_remote() ? 1 : 0);  // RTR
    sink(0);                          // IDE: standard
    sink(0);                          // r0
  } else {
    emit_value(sink, frame.id() >> 18, 11);  // base id
    sink(1);                                 // SRR, recessive
    sink(1);                                 // IDE: extended
    emit_value(sink, frame.id() & 0x3FFFF, 18);
    sink(frame.is_remote() ? 1 : 0);  // RTR
    sink(0);                          // r1
    sink(0);                          // r0
  }
  emit_value(sink, frame.dlc(), 4);
  for (std::uint8_t byte : frame.payload()) emit_value(sink, byte, 8);
}

template <typename Sink>
void emit_fd_head(Sink& sink, const CanFrame& frame) {
  sink(0);  // SOF
  if (!frame.is_extended()) {
    emit_value(sink, frame.id(), 11);
    sink(0);  // RRS
    sink(0);  // IDE
  } else {
    emit_value(sink, frame.id() >> 18, 11);
    sink(1);  // SRR
    sink(1);  // IDE
    emit_value(sink, frame.id() & 0x3FFFF, 18);
    sink(0);  // RRS
  }
  sink(1);                    // FDF
  sink(0);                    // res
  sink(frame.brs() ? 1 : 0);  // BRS
  sink(0);                    // ESI (error active)
  emit_value(sink, frame.dlc(), 4);
  for (std::uint8_t byte : frame.payload()) emit_value(sink, byte, 8);
}

/// Computes the stuffed-region length of a frame without materialising any
/// bits: the CRC15 register and the stuff-run state live in registers.  The
/// stuffing recurrence mirrors count_stuff_bits() (a stuff bit counts toward
/// the following run), and the CRC step mirrors crc15_bits().
struct WireLengthCounter {
  std::uint16_t crc = 0;
  std::size_t logical = 0;
  std::size_t stuffed = 0;
  std::uint8_t last = 2;  // neither 0 nor 1
  int run = 0;

  void operator()(std::uint8_t bit) {
    const bool do_xor = (((crc & 0x4000) != 0) != (bit != 0));
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (do_xor) crc = static_cast<std::uint16_t>(crc ^ 0x4599);
    count(bit);
  }

  // Stuff-count only; used for the CRC field, which is stuffed but does not
  // feed back into the CRC register.
  void count(std::uint8_t bit) {
    ++logical;
    if (bit == last) {
      ++run;
    } else {
      last = bit;
      run = 1;
    }
    if (run == 5) {
      ++stuffed;
      last = static_cast<std::uint8_t>(1 - last);
      run = 1;
    }
  }
};

// ---------------------------------------------------------------------------
// Table-driven fast path for classic frames (the bus model computes a wire
// length for every transmission, so this is the simulator's hottest leaf).
// The per-bit recurrences above are folded into byte-step tables: one CRC15
// table lookup and one stuffing-automaton lookup replace eight branchy bit
// steps each.  Both tables are generated from the bitwise definitions at
// compile time, so they cannot drift from the reference path (and
// codec_property_test cross-checks them against encode_logical + stuff()).

/// CRC15 byte step: T[i] is the register after eight zero-feed bit steps
/// starting from i << 7.  Because the step is GF(2)-linear in (register,
/// input bit), feeding byte b into register c equals
/// ((c << 8) & 0x7FFF) ^ T[(c >> 7) ^ b].
struct Crc15ByteTable {
  std::uint16_t at[256] = {};
};

consteval Crc15ByteTable make_crc15_byte_table() {
  Crc15ByteTable table;
  for (unsigned i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 7);
    for (int k = 0; k < 8; ++k) {
      const bool do_xor = (crc & 0x4000) != 0;
      crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
      if (do_xor) crc = static_cast<std::uint16_t>(crc ^ 0x4599);
    }
    table.at[i] = crc;
  }
  return table;
}

constexpr Crc15ByteTable kCrc15Byte = make_crc15_byte_table();

inline std::uint16_t crc15_step_byte(std::uint16_t crc, std::uint8_t byte) {
  return static_cast<std::uint16_t>(((crc << 8) & 0x7FFF) ^
                                    kCrc15Byte.at[((crc >> 7) & 0xFF) ^ byte]);
}

/// Bit-stuffing automaton over bytes.  State encodes (last bit, run length):
/// states 0..7 are last*4 + (run-1) for run 1..4 (a run of 5 is resolved
/// immediately by inserting a stuff bit, which resets the run), state 8 is
/// the pre-SOF "no previous bit" start state.
struct StuffByteTable {
  std::uint8_t next[9][256] = {};
  std::uint8_t added[9][256] = {};
};

consteval StuffByteTable make_stuff_byte_table() {
  StuffByteTable table;
  for (unsigned state = 0; state < 9; ++state) {
    for (unsigned byte = 0; byte < 256; ++byte) {
      std::uint8_t last = state == 8 ? 2 : static_cast<std::uint8_t>(state / 4);
      int run = state == 8 ? 0 : static_cast<int>(state % 4) + 1;
      unsigned stuffed = 0;
      for (int shift = 7; shift >= 0; --shift) {
        const std::uint8_t bit = (byte >> shift) & 1;
        if (bit == last) {
          ++run;
        } else {
          last = bit;
          run = 1;
        }
        if (run == 5) {
          ++stuffed;
          last = static_cast<std::uint8_t>(1 - last);
          run = 1;
        }
      }
      table.next[state][byte] = static_cast<std::uint8_t>(last * 4 + (run - 1));
      table.added[state][byte] = static_cast<std::uint8_t>(stuffed);
    }
  }
  return table;
}

constexpr StuffByteTable kStuffByte = make_stuff_byte_table();

/// 128-bit left-shift register built from two 64-bit words: a classic
/// frame's whole stuffed region (SOF..CRC, at most 103 + 15 = 118 bits)
/// fits without touching memory.
struct PackedBits {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::size_t count = 0;

  void append(std::uint32_t value, int width) {  // width in [1, 63]
    hi = (hi << width) | (lo >> (64 - width));
    lo = (lo << width) | value;
    count += static_cast<std::size_t>(width);
  }
};

/// Streams a PackedBits register MSB-first, a byte or a bit at a time.
struct BitReader {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::size_t remaining = 0;

  explicit BitReader(const PackedBits& packed) : remaining(packed.count) {
    const std::size_t shift = 128 - packed.count;  // left-align (count >= 19)
    if (shift >= 64) {
      hi = shift == 64 ? packed.lo : packed.lo << (shift - 64);
      lo = 0;
    } else {
      hi = (packed.hi << shift) | (packed.lo >> (64 - shift));
      lo = packed.lo << shift;
    }
  }

  std::uint8_t take_byte() {
    const auto byte = static_cast<std::uint8_t>(hi >> 56);
    hi = (hi << 8) | (lo >> 56);
    lo <<= 8;
    remaining -= 8;
    return byte;
  }

  std::uint8_t take_bit() {
    const auto bit = static_cast<std::uint8_t>(hi >> 63);
    hi = (hi << 1) | (lo >> 63);
    lo <<= 1;
    --remaining;
    return bit;
  }
};

std::size_t classic_wire_bit_count(const CanFrame& frame) {
  PackedBits packed;
  packed.append(0, 1);  // SOF, dominant
  if (!frame.is_extended()) {
    packed.append(frame.id(), 11);
    packed.append(frame.is_remote() ? 1u : 0u, 1);  // RTR
    packed.append(0, 2);                            // IDE, r0
  } else {
    packed.append(frame.id() >> 18, 11);  // base id
    packed.append(3, 2);                  // SRR, IDE (both recessive)
    packed.append(frame.id() & 0x3FFFF, 18);
    packed.append(frame.is_remote() ? 1u : 0u, 1);  // RTR
    packed.append(0, 2);                            // r1, r0
  }
  packed.append(frame.dlc(), 4);
  for (std::uint8_t byte : frame.payload()) packed.append(byte, 8);

  // CRC15 over SOF..data.
  std::uint16_t crc = 0;
  for (BitReader reader(packed); reader.remaining != 0;) {
    if (reader.remaining >= 8) {
      crc = crc15_step_byte(crc, reader.take_byte());
    } else {
      const std::uint8_t bit = reader.take_bit();
      const bool do_xor = (((crc & 0x4000) != 0) != (bit != 0));
      crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
      if (do_xor) crc = static_cast<std::uint16_t>(crc ^ 0x4599);
    }
  }

  // Stuff count over SOF..data..CRC via the byte automaton.
  packed.append(crc, 15);
  std::size_t stuffed = 0;
  std::uint8_t state = 8;
  BitReader reader(packed);
  while (reader.remaining >= 8) {
    const std::uint8_t byte = reader.take_byte();
    stuffed += kStuffByte.added[state][byte];
    state = kStuffByte.next[state][byte];
  }
  std::uint8_t last = static_cast<std::uint8_t>(state / 4);
  int run = static_cast<int>(state % 4) + 1;
  while (reader.remaining != 0) {
    const std::uint8_t bit = reader.take_bit();
    if (bit == last) {
      ++run;
    } else {
      last = bit;
      run = 1;
    }
    if (run == 5) {
      ++stuffed;
      last = static_cast<std::uint8_t>(1 - last);
      run = 1;
    }
  }

  return packed.count + stuffed + kTailBits + kInterframeSpace;
}

}  // namespace

BitVec encode_logical(const CanFrame& frame) {
  if (frame.is_fd()) return {};
  BitVec bits;
  bits.reserve(128);
  auto sink = [&bits](std::uint8_t bit) { bits.push_back(bit); };
  emit_header_and_data(sink, frame);
  const std::uint16_t crc = crc15_bits(bits);
  append_bits(bits, crc, 15);
  return bits;
}

std::optional<CanFrame> decode_logical(std::span<const std::uint8_t> bits) {
  std::size_t pos = 0;
  const auto sof = read_bits(bits, pos, 1);
  if (!sof || *sof != 0) return std::nullopt;
  const auto base_id = read_bits(bits, pos, 11);
  if (!base_id) return std::nullopt;
  const auto bit_after_id = read_bits(bits, pos, 1);  // RTR (std) or SRR (ext)
  const auto ide = read_bits(bits, pos, 1);
  if (!bit_after_id || !ide) return std::nullopt;

  std::uint32_t id = 0;
  bool remote = false;
  IdFormat format = IdFormat::kStandard;
  if (*ide == 0) {
    id = *base_id;
    remote = (*bit_after_id != 0);
    const auto r0 = read_bits(bits, pos, 1);
    if (!r0) return std::nullopt;
  } else {
    format = IdFormat::kExtended;
    if (*bit_after_id != 1) return std::nullopt;  // SRR must be recessive
    const auto ext = read_bits(bits, pos, 18);
    const auto rtr = read_bits(bits, pos, 1);
    const auto r1 = read_bits(bits, pos, 1);
    const auto r0 = read_bits(bits, pos, 1);
    if (!ext || !rtr || !r1 || !r0) return std::nullopt;
    id = (*base_id << 18) | *ext;
    remote = (*rtr != 0);
  }

  const auto dlc = read_bits(bits, pos, 4);
  if (!dlc) return std::nullopt;
  // Classic CAN: DLC 9..15 are transmitted by some controllers but always
  // mean 8 data bytes; preserve the 0..8 clamp here.
  const std::size_t len = remote ? 0 : std::min<std::size_t>(*dlc, kMaxClassicPayload);

  std::vector<std::uint8_t> payload(len);
  for (auto& byte : payload) {
    const auto value = read_bits(bits, pos, 8);
    if (!value) return std::nullopt;
    byte = static_cast<std::uint8_t>(*value);
  }

  // CRC covers everything before the CRC field.
  const std::uint16_t computed = crc15_bits(bits.subspan(0, pos));
  const auto crc = read_bits(bits, pos, 15);
  if (!crc || *crc != computed) return std::nullopt;
  if (pos != bits.size()) return std::nullopt;  // trailing garbage

  if (remote) {
    return CanFrame::remote(id, static_cast<std::uint8_t>(std::min<std::uint32_t>(*dlc, 8)),
                            format);
  }
  return CanFrame::data(id, payload, format);
}

BitVec encode_wire(const CanFrame& frame, bool acked) {
  BitVec logical = encode_logical(frame);
  BitVec wire = stuff(logical);
  wire.push_back(1);                // CRC delimiter
  wire.push_back(acked ? 0 : 1);    // ACK slot (dominant when acknowledged)
  wire.push_back(1);                // ACK delimiter
  for (int i = 0; i < 7; ++i) wire.push_back(1);  // EOF
  return wire;
}

std::optional<CanFrame> decode_wire(std::span<const std::uint8_t> bits) {
  if (bits.size() < kTailBits + 1) return std::nullopt;
  const std::size_t stuffed_len = bits.size() - kTailBits;
  const auto tail = bits.subspan(stuffed_len);
  // CRC delimiter, ACK delimiter and all EOF bits must be recessive; the ACK
  // slot (tail[1]) may be either.
  if (tail[0] != 1 || tail[2] != 1) return std::nullopt;
  for (std::size_t i = 3; i < kTailBits; ++i) {
    if (tail[i] != 1) return std::nullopt;
  }
  const auto logical = unstuff(bits.subspan(0, stuffed_len));
  if (!logical) return std::nullopt;
  return decode_logical(*logical);
}

std::size_t wire_bit_count(const CanFrame& frame) {
  if (!frame.is_fd()) {
    // Classic frames sit on the bus model's hottest path (every transmission
    // prices its wire time), so the length comes from the byte-step tables
    // rather than a per-bit walk.
    return classic_wire_bit_count(frame);
  }
  // CAN FD: dynamic stuffing covers SOF..end-of-data; the CRC field uses
  // fixed stuffing (ISO 11898-1:2015).
  WireLengthCounter head;
  emit_fd_head(head, frame);
  const std::size_t dynamic = head.logical + head.stuffed;
  // CRC field: stuff count (4 bits incl. parity) + CRC17/21, with a fixed
  // stuff bit before the stuff count and before every 4th CRC bit.
  const std::size_t crc_bits = frame.length() <= 16 ? 17 : 21;
  const std::size_t fixed_stuff = 1 + (crc_bits + 3) / 4;
  const std::size_t crc_field = 4 + crc_bits + fixed_stuff;
  return dynamic + crc_field + kTailBits + kInterframeSpace;
}

sim::Duration frame_time(const CanFrame& frame, std::uint32_t nominal_bps,
                         std::uint32_t data_bps) {
  const std::size_t total = wire_bit_count(frame);
  if (!frame.is_fd() || !frame.brs()) {
    return bit_time(nominal_bps) * static_cast<std::int64_t>(total);
  }
  // BRS frames: arbitration header and tail run at the nominal rate, the
  // rest (data + CRC field) at the data rate.
  const std::size_t header = frame.is_extended() ? 36u : 17u;  // SOF..BRS
  const std::size_t tail = kTailBits + kInterframeSpace;
  const std::size_t nominal_bits = header + tail;
  const std::size_t data_bits = total > nominal_bits ? total - nominal_bits : 0;
  return bit_time(nominal_bps) * static_cast<std::int64_t>(nominal_bits) +
         bit_time(data_bps) * static_cast<std::int64_t>(data_bits);
}

std::size_t worst_case_bit_count(std::size_t payload_len, IdFormat format) noexcept {
  payload_len = std::min(payload_len, kMaxClassicPayload);
  // Unstuffed SOF..CRC length:
  const std::size_t logical =
      (format == IdFormat::kStandard ? 19u : 39u) + 8 * payload_len + 15;
  // Stuffing can add at most one bit per four past the first (Bosch 2.0).
  const std::size_t max_stuff = (logical - 1) / 4;
  return logical + max_stuff + kTailBits + kInterframeSpace;
}

}  // namespace acf::can
