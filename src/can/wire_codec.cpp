#include "can/wire_codec.hpp"

#include <vector>

#include "can/crc.hpp"

namespace acf::can {

namespace {

// Fixed-form tail after the stuffed region: CRC delimiter, ACK slot,
// ACK delimiter, EOF (7 recessive bits).
constexpr std::size_t kTailBits = 1 + 1 + 1 + 7;
constexpr std::size_t kInterframeSpace = 3;

void append_header_and_data(BitVec& bits, const CanFrame& frame) {
  bits.push_back(0);  // SOF, dominant
  if (!frame.is_extended()) {
    append_bits(bits, frame.id(), 11);
    bits.push_back(frame.is_remote() ? 1 : 0);  // RTR
    bits.push_back(0);                          // IDE: standard
    bits.push_back(0);                          // r0
  } else {
    append_bits(bits, frame.id() >> 18, 11);  // base id
    bits.push_back(1);                        // SRR, recessive
    bits.push_back(1);                        // IDE: extended
    append_bits(bits, frame.id() & 0x3FFFF, 18);
    bits.push_back(frame.is_remote() ? 1 : 0);  // RTR
    bits.push_back(0);                          // r1
    bits.push_back(0);                          // r0
  }
  append_bits(bits, frame.dlc(), 4);
  for (std::uint8_t byte : frame.payload()) append_bits(bits, byte, 8);
}

}  // namespace

BitVec encode_logical(const CanFrame& frame) {
  if (frame.is_fd()) return {};
  BitVec bits;
  bits.reserve(128);
  append_header_and_data(bits, frame);
  const std::uint16_t crc = crc15_bits(bits);
  append_bits(bits, crc, 15);
  return bits;
}

std::optional<CanFrame> decode_logical(std::span<const std::uint8_t> bits) {
  std::size_t pos = 0;
  const auto sof = read_bits(bits, pos, 1);
  if (!sof || *sof != 0) return std::nullopt;
  const auto base_id = read_bits(bits, pos, 11);
  if (!base_id) return std::nullopt;
  const auto bit_after_id = read_bits(bits, pos, 1);  // RTR (std) or SRR (ext)
  const auto ide = read_bits(bits, pos, 1);
  if (!bit_after_id || !ide) return std::nullopt;

  std::uint32_t id = 0;
  bool remote = false;
  IdFormat format = IdFormat::kStandard;
  if (*ide == 0) {
    id = *base_id;
    remote = (*bit_after_id != 0);
    const auto r0 = read_bits(bits, pos, 1);
    if (!r0) return std::nullopt;
  } else {
    format = IdFormat::kExtended;
    if (*bit_after_id != 1) return std::nullopt;  // SRR must be recessive
    const auto ext = read_bits(bits, pos, 18);
    const auto rtr = read_bits(bits, pos, 1);
    const auto r1 = read_bits(bits, pos, 1);
    const auto r0 = read_bits(bits, pos, 1);
    if (!ext || !rtr || !r1 || !r0) return std::nullopt;
    id = (*base_id << 18) | *ext;
    remote = (*rtr != 0);
  }

  const auto dlc = read_bits(bits, pos, 4);
  if (!dlc) return std::nullopt;
  // Classic CAN: DLC 9..15 are transmitted by some controllers but always
  // mean 8 data bytes; preserve the 0..8 clamp here.
  const std::size_t len = remote ? 0 : std::min<std::size_t>(*dlc, kMaxClassicPayload);

  std::vector<std::uint8_t> payload(len);
  for (auto& byte : payload) {
    const auto value = read_bits(bits, pos, 8);
    if (!value) return std::nullopt;
    byte = static_cast<std::uint8_t>(*value);
  }

  // CRC covers everything before the CRC field.
  const std::uint16_t computed = crc15_bits(bits.subspan(0, pos));
  const auto crc = read_bits(bits, pos, 15);
  if (!crc || *crc != computed) return std::nullopt;
  if (pos != bits.size()) return std::nullopt;  // trailing garbage

  if (remote) {
    return CanFrame::remote(id, static_cast<std::uint8_t>(std::min<std::uint32_t>(*dlc, 8)),
                            format);
  }
  return CanFrame::data(id, payload, format);
}

BitVec encode_wire(const CanFrame& frame, bool acked) {
  BitVec logical = encode_logical(frame);
  BitVec wire = stuff(logical);
  wire.push_back(1);                // CRC delimiter
  wire.push_back(acked ? 0 : 1);    // ACK slot (dominant when acknowledged)
  wire.push_back(1);                // ACK delimiter
  for (int i = 0; i < 7; ++i) wire.push_back(1);  // EOF
  return wire;
}

std::optional<CanFrame> decode_wire(std::span<const std::uint8_t> bits) {
  if (bits.size() < kTailBits + 1) return std::nullopt;
  const std::size_t stuffed_len = bits.size() - kTailBits;
  const auto tail = bits.subspan(stuffed_len);
  // CRC delimiter, ACK delimiter and all EOF bits must be recessive; the ACK
  // slot (tail[1]) may be either.
  if (tail[0] != 1 || tail[2] != 1) return std::nullopt;
  for (std::size_t i = 3; i < kTailBits; ++i) {
    if (tail[i] != 1) return std::nullopt;
  }
  const auto logical = unstuff(bits.subspan(0, stuffed_len));
  if (!logical) return std::nullopt;
  return decode_logical(*logical);
}

std::size_t wire_bit_count(const CanFrame& frame) {
  if (!frame.is_fd()) {
    const BitVec logical = encode_logical(frame);
    return logical.size() + count_stuff_bits(logical) + kTailBits + kInterframeSpace;
  }
  // CAN FD: dynamic stuffing covers SOF..end-of-data; the CRC field uses
  // fixed stuffing (ISO 11898-1:2015).
  BitVec head;
  head.push_back(0);  // SOF
  if (!frame.is_extended()) {
    append_bits(head, frame.id(), 11);
    head.push_back(0);  // RRS
    head.push_back(0);  // IDE
  } else {
    append_bits(head, frame.id() >> 18, 11);
    head.push_back(1);  // SRR
    head.push_back(1);  // IDE
    append_bits(head, frame.id() & 0x3FFFF, 18);
    head.push_back(0);  // RRS
  }
  head.push_back(1);                     // FDF
  head.push_back(0);                     // res
  head.push_back(frame.brs() ? 1 : 0);   // BRS
  head.push_back(0);                     // ESI (error active)
  append_bits(head, frame.dlc(), 4);
  for (std::uint8_t byte : frame.payload()) append_bits(head, byte, 8);

  const std::size_t dynamic = head.size() + count_stuff_bits(head);
  // CRC field: stuff count (4 bits incl. parity) + CRC17/21, with a fixed
  // stuff bit before the stuff count and before every 4th CRC bit.
  const std::size_t crc_bits = frame.length() <= 16 ? 17 : 21;
  const std::size_t fixed_stuff = 1 + (crc_bits + 3) / 4;
  const std::size_t crc_field = 4 + crc_bits + fixed_stuff;
  return dynamic + crc_field + kTailBits + kInterframeSpace;
}

sim::Duration frame_time(const CanFrame& frame, std::uint32_t nominal_bps,
                         std::uint32_t data_bps) {
  const std::size_t total = wire_bit_count(frame);
  if (!frame.is_fd() || !frame.brs()) {
    return bit_time(nominal_bps) * static_cast<std::int64_t>(total);
  }
  // BRS frames: arbitration header and tail run at the nominal rate, the
  // rest (data + CRC field) at the data rate.
  const std::size_t header = frame.is_extended() ? 36u : 17u;  // SOF..BRS
  const std::size_t tail = kTailBits + kInterframeSpace;
  const std::size_t nominal_bits = header + tail;
  const std::size_t data_bits = total > nominal_bits ? total - nominal_bits : 0;
  return bit_time(nominal_bps) * static_cast<std::int64_t>(nominal_bits) +
         bit_time(data_bps) * static_cast<std::int64_t>(data_bits);
}

std::size_t worst_case_bit_count(std::size_t payload_len, IdFormat format) noexcept {
  payload_len = std::min(payload_len, kMaxClassicPayload);
  // Unstuffed SOF..CRC length:
  const std::size_t logical =
      (format == IdFormat::kStandard ? 19u : 39u) + 8 * payload_len + 15;
  // Stuffing can add at most one bit per four past the first (Bosch 2.0).
  const std::size_t max_stuff = (logical - 1) / 4;
  return logical + max_stuff + kTailBits + kInterframeSpace;
}

}  // namespace acf::can
