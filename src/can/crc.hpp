// CAN checksums: CRC-15 for classic frames (Bosch CAN 2.0 §3.1.1) and the
// CRC-17 / CRC-21 polynomials used by CAN FD (ISO 11898-1:2015).
#pragma once

#include <cstdint>
#include <span>

namespace acf::can {

/// CRC-15-CAN, polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1 (0x4599),
/// init 0, over a sequence of bits (MSB-first as they appear on the wire).
std::uint16_t crc15_bits(std::span<const std::uint8_t> bits);

/// CRC-17-CAN-FD, polynomial 0x3685B (x^17+...), init bit set per ISO.
std::uint32_t crc17_bits(std::span<const std::uint8_t> bits);

/// CRC-21-CAN-FD, polynomial 0x302899, init bit set per ISO.
std::uint32_t crc21_bits(std::span<const std::uint8_t> bits);

/// Convenience: CRC-15 over whole bytes (MSB-first bit order per byte).
std::uint16_t crc15_bytes(std::span<const std::uint8_t> bytes);

}  // namespace acf::can
