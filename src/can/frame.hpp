// CAN frame model: classic CAN 2.0A/B data and remote frames plus CAN FD
// (the paper's §VII lists CAN FD fuzzing as follow-on work; we implement it).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace acf::can {

/// Highest valid 11-bit (standard/base) identifier.
inline constexpr std::uint32_t kMaxStandardId = 0x7FF;
/// Highest valid 29-bit (extended) identifier.
inline constexpr std::uint32_t kMaxExtendedId = 0x1FFFFFFF;
/// Classic CAN payload limit.
inline constexpr std::size_t kMaxClassicPayload = 8;
/// CAN FD payload limit.
inline constexpr std::size_t kMaxFdPayload = 64;

/// Frame format: base (11-bit id) or extended (29-bit id).
enum class IdFormat : std::uint8_t { kStandard, kExtended };

/// Maps a CAN FD DLC code (0..15) to its payload length in bytes.
std::size_t fd_dlc_to_length(std::uint8_t dlc) noexcept;

/// Maps a payload length to the smallest DLC whose capacity fits it, i.e.
/// the DLC a conforming FD controller would transmit (lengths between code
/// points round up).  Returns nullopt for lengths > 64.
std::optional<std::uint8_t> fd_length_to_dlc(std::size_t length) noexcept;

/// True if `length` is directly expressible as an FD DLC (no padding).
bool is_valid_fd_length(std::size_t length) noexcept;

/// A CAN data or remote frame.
///
/// Invariants (enforced by the named constructors; default construction
/// yields an empty standard data frame):
///  - id fits the format (11 or 29 bits)
///  - classic frames carry 0..8 payload bytes, FD frames a valid FD length
///  - remote frames carry no data (their DLC requests a length)
class CanFrame {
 public:
  CanFrame() = default;

  /// Classic data frame.  Returns nullopt if id/payload violate the format.
  static std::optional<CanFrame> data(std::uint32_t id, std::span<const std::uint8_t> payload,
                                      IdFormat format = IdFormat::kStandard);
  static std::optional<CanFrame> data(std::uint32_t id,
                                      std::initializer_list<std::uint8_t> payload,
                                      IdFormat format = IdFormat::kStandard) {
    return data(id, std::span<const std::uint8_t>(payload.begin(), payload.size()), format);
  }

  /// Classic remote frame requesting `dlc` bytes (0..8).
  static std::optional<CanFrame> remote(std::uint32_t id, std::uint8_t dlc,
                                        IdFormat format = IdFormat::kStandard);

  /// CAN FD data frame (no remote frames exist in FD).  `brs` = bit-rate
  /// switch for the data phase.  Payload length must be a valid FD length.
  static std::optional<CanFrame> fd_data(std::uint32_t id, std::span<const std::uint8_t> payload,
                                         bool brs = true, IdFormat format = IdFormat::kStandard);

  /// Convenience for tests/examples: data frame from an initializer list;
  /// terminates on contract violation instead of returning nullopt.
  static CanFrame data_std(std::uint32_t id, std::initializer_list<std::uint8_t> payload);

  std::uint32_t id() const noexcept { return id_; }
  IdFormat format() const noexcept { return format_; }
  bool is_extended() const noexcept { return format_ == IdFormat::kExtended; }
  bool is_remote() const noexcept { return remote_; }
  bool is_fd() const noexcept { return fd_; }
  bool brs() const noexcept { return brs_; }

  /// Payload bytes (empty for remote frames — their DLC only *requests* a
  /// length; no data travels on the wire).
  std::span<const std::uint8_t> payload() const noexcept {
    return {data_.data(), remote_ ? 0 : length_};
  }
  std::size_t length() const noexcept { return length_; }

  /// The DLC field value on the wire: equals length for classic data frames,
  /// the requested length for remote frames, the FD code for FD frames.
  std::uint8_t dlc() const noexcept;

  /// Arbitration priority: lower wins.  Captures the CAN rule that a base
  /// frame beats the extended frame sharing its 11-bit prefix (the base
  /// frame's RTR/SRR position is dominant where extended sends recessive).
  std::uint64_t arbitration_rank() const noexcept;

  /// "043A#1C2117..." compact rendering (candump style).
  std::string to_string() const;

  friend bool operator==(const CanFrame& a, const CanFrame& b) noexcept;

 private:
  std::uint32_t id_ = 0;
  IdFormat format_ = IdFormat::kStandard;
  bool remote_ = false;
  bool fd_ = false;
  bool brs_ = false;
  std::size_t length_ = 0;       // payload length (remote: requested length)
  std::array<std::uint8_t, kMaxFdPayload> data_{};
};

}  // namespace acf::can
