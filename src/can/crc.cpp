#include "can/crc.hpp"

namespace acf::can {

namespace {

/// Generic bitwise CRC over a bit sequence (each input element is one bit,
/// 0 or 1).  `poly` excludes the top term; `width` is the CRC width.
template <typename Out>
Out crc_bits(std::span<const std::uint8_t> bits, Out poly, int width, Out init) {
  const Out top = static_cast<Out>(Out{1} << (width - 1));
  const Out mask = static_cast<Out>((top - 1) | top);
  Out crc = init;
  for (std::uint8_t bit : bits) {
    const bool do_xor = (((crc & top) != 0) != (bit != 0));
    crc = static_cast<Out>((crc << 1) & mask);
    if (do_xor) crc = static_cast<Out>(crc ^ poly);
  }
  return crc;
}

}  // namespace

std::uint16_t crc15_bits(std::span<const std::uint8_t> bits) {
  return crc_bits<std::uint16_t>(bits, 0x4599, 15, 0);
}

std::uint32_t crc17_bits(std::span<const std::uint8_t> bits) {
  // ISO 11898-1:2015 initialises FD CRCs with the MSB set.  The published
  // generator values 0x3685B / 0x302899 include the x^17 / x^21 top term;
  // the division uses the remainder polynomial (top term stripped).
  return crc_bits<std::uint32_t>(bits, 0x3685B & 0x1FFFF, 17, 1u << 16);
}

std::uint32_t crc21_bits(std::span<const std::uint8_t> bits) {
  return crc_bits<std::uint32_t>(bits, 0x302899 & 0x1FFFFF, 21, 1u << 20);
}

std::uint16_t crc15_bytes(std::span<const std::uint8_t> bytes) {
  std::uint16_t crc = 0;
  for (std::uint8_t byte : bytes) {
    for (int i = 7; i >= 0; --i) {
      const std::uint8_t bit = static_cast<std::uint8_t>((byte >> i) & 1);
      const bool do_xor = (((crc & 0x4000) != 0) != (bit != 0));
      crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
      if (do_xor) crc = static_cast<std::uint16_t>(crc ^ 0x4599);
    }
  }
  return crc;
}

}  // namespace acf::can
