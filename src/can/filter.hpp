// Acceptance filtering, as implemented by CAN controller hardware (id/mask
// pairs) and by gateway ECUs (whitelists / ranges).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "can/frame.hpp"

namespace acf::can {

/// A single id/mask acceptance filter: a frame matches when
/// (frame.id & mask) == (id & mask) and the format matches.
struct IdMaskFilter {
  std::uint32_t id = 0;
  std::uint32_t mask = 0;  // 0 accepts everything of the format
  IdFormat format = IdFormat::kStandard;

  bool matches(const CanFrame& frame) const noexcept {
    return frame.format() == format && ((frame.id() ^ id) & mask) == 0;
  }

  /// Filter accepting exactly one id.
  static IdMaskFilter exact(std::uint32_t id, IdFormat format = IdFormat::kStandard) noexcept {
    const std::uint32_t mask = (format == IdFormat::kStandard) ? kMaxStandardId : kMaxExtendedId;
    return {id, mask, format};
  }

  /// Filter accepting every frame of the given format.
  static IdMaskFilter any(IdFormat format = IdFormat::kStandard) noexcept {
    return {0, 0, format};
  }
};

/// A bank of filters; a frame is accepted if any filter matches.
/// An empty bank accepts everything (matching SocketCAN semantics).
class FilterBank {
 public:
  FilterBank() = default;
  FilterBank(std::initializer_list<IdMaskFilter> filters) : filters_(filters) {}

  void add(IdMaskFilter filter) { filters_.push_back(filter); }
  void clear() noexcept { filters_.clear(); }
  bool empty() const noexcept { return filters_.empty(); }
  std::size_t size() const noexcept { return filters_.size(); }

  bool accepts(const CanFrame& frame) const noexcept {
    if (filters_.empty()) return true;
    for (const auto& f : filters_) {
      if (f.matches(frame)) return true;
    }
    return false;
  }

 private:
  std::vector<IdMaskFilter> filters_;
};

}  // namespace acf::can
