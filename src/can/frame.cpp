#include "can/frame.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/hex.hpp"

namespace acf::can {

namespace {
// FD DLC code points 9..15 map to these lengths.
constexpr std::array<std::size_t, 7> kFdLengths = {12, 16, 20, 24, 32, 48, 64};
}  // namespace

std::size_t fd_dlc_to_length(std::uint8_t dlc) noexcept {
  if (dlc <= 8) return dlc;
  if (dlc <= 15) return kFdLengths[static_cast<std::size_t>(dlc) - 9];
  return 0;
}

std::optional<std::uint8_t> fd_length_to_dlc(std::size_t length) noexcept {
  if (length <= 8) return static_cast<std::uint8_t>(length);
  for (std::size_t i = 0; i < kFdLengths.size(); ++i) {
    if (length <= kFdLengths[i]) return static_cast<std::uint8_t>(9 + i);
  }
  return std::nullopt;
}

bool is_valid_fd_length(std::size_t length) noexcept {
  if (length <= 8) return true;
  return std::find(kFdLengths.begin(), kFdLengths.end(), length) != kFdLengths.end();
}

std::optional<CanFrame> CanFrame::data(std::uint32_t id, std::span<const std::uint8_t> payload,
                                       IdFormat format) {
  const std::uint32_t max_id = (format == IdFormat::kStandard) ? kMaxStandardId : kMaxExtendedId;
  if (id > max_id || payload.size() > kMaxClassicPayload) return std::nullopt;
  CanFrame f;
  f.id_ = id;
  f.format_ = format;
  f.length_ = payload.size();
  std::copy(payload.begin(), payload.end(), f.data_.begin());
  return f;
}

std::optional<CanFrame> CanFrame::remote(std::uint32_t id, std::uint8_t dlc, IdFormat format) {
  const std::uint32_t max_id = (format == IdFormat::kStandard) ? kMaxStandardId : kMaxExtendedId;
  if (id > max_id || dlc > kMaxClassicPayload) return std::nullopt;
  CanFrame f;
  f.id_ = id;
  f.format_ = format;
  f.remote_ = true;
  f.length_ = dlc;  // requested length; no data carried
  return f;
}

std::optional<CanFrame> CanFrame::fd_data(std::uint32_t id, std::span<const std::uint8_t> payload,
                                          bool brs, IdFormat format) {
  const std::uint32_t max_id = (format == IdFormat::kStandard) ? kMaxStandardId : kMaxExtendedId;
  if (id > max_id || !is_valid_fd_length(payload.size())) return std::nullopt;
  CanFrame f;
  f.id_ = id;
  f.format_ = format;
  f.fd_ = true;
  f.brs_ = brs;
  f.length_ = payload.size();
  std::copy(payload.begin(), payload.end(), f.data_.begin());
  return f;
}

CanFrame CanFrame::data_std(std::uint32_t id, std::initializer_list<std::uint8_t> payload) {
  auto frame = data(id, {payload.begin(), payload.size()});
  if (!frame) std::abort();  // programming error in a test/example literal
  return *frame;
}

std::uint8_t CanFrame::dlc() const noexcept {
  if (!fd_) return static_cast<std::uint8_t>(length_);
  return fd_length_to_dlc(length_).value_or(0);
}

std::uint64_t CanFrame::arbitration_rank() const noexcept {
  // Rank by the dominant/recessive sequence of the arbitration field.
  // Base frames: 11-bit id then dominant RTR(data)/recessive RTR(remote).
  // Extended frames: same 11 bits, then recessive SRR+IDE, 18 more id bits,
  // then RTR.  Building the rank as (base11, ide, rest) preserves wire order.
  std::uint64_t rank = 0;
  if (format_ == IdFormat::kStandard) {
    rank = static_cast<std::uint64_t>(id_) << 21;  // base id, top
    rank |= static_cast<std::uint64_t>(remote_ ? 1 : 0) << 20;
    // IDE dominant (0) for base frames: nothing to add.
  } else {
    rank = static_cast<std::uint64_t>(id_ >> 18) << 21;           // base 11 bits
    rank |= 1ULL << 20;                                           // SRR recessive
    rank |= 1ULL << 19;                                           // IDE recessive
    rank |= static_cast<std::uint64_t>(id_ & 0x3FFFF) << 1;       // extension
    rank |= static_cast<std::uint64_t>(remote_ ? 1 : 0);
  }
  return rank;
}

std::string CanFrame::to_string() const {
  std::string out = util::hex_u32(id_, is_extended() ? 8 : 3);
  out += '#';
  if (remote_) {
    out += 'R';
    out += static_cast<char>('0' + length_);
  } else {
    if (fd_) out += brs_ ? "#F" : "#f";
    out += util::hex_bytes(payload(), '\0');
  }
  return out;
}

bool operator==(const CanFrame& a, const CanFrame& b) noexcept {
  if (a.id_ != b.id_ || a.format_ != b.format_ || a.remote_ != b.remote_ || a.fd_ != b.fd_ ||
      a.brs_ != b.brs_ || a.length_ != b.length_) {
    return false;
  }
  return std::equal(a.data_.begin(), a.data_.begin() + static_cast<std::ptrdiff_t>(a.length_),
                    b.data_.begin());
}

}  // namespace acf::can
