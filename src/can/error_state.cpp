#include "can/error_state.hpp"

namespace acf::can {

const char* to_string(ErrorMode mode) noexcept {
  switch (mode) {
    case ErrorMode::kErrorActive: return "error-active";
    case ErrorMode::kErrorPassive: return "error-passive";
    case ErrorMode::kBusOff: return "bus-off";
  }
  return "?";
}

ErrorMode ErrorState::mode() const noexcept {
  if (tec_ > 255) return ErrorMode::kBusOff;
  if (tec_ > 127 || rec_ > 127) return ErrorMode::kErrorPassive;
  return ErrorMode::kErrorActive;
}

void ErrorState::on_tx_error() noexcept {
  ++tx_errors_;
  if (tec_ <= 255) {
    tec_ = static_cast<std::uint16_t>(tec_ + 8);
    if (tec_ > 255) ++bus_off_events_;  // just crossed the confinement line
  }
}

void ErrorState::on_rx_error() noexcept {
  ++rx_errors_;
  if (rec_ < 255) rec_ = static_cast<std::uint16_t>(rec_ + 1);
}

void ErrorState::on_rx_error_primary() noexcept {
  ++rx_errors_;
  rec_ = static_cast<std::uint16_t>(rec_ + 8 > 255 ? 255 : rec_ + 8);
}

void ErrorState::on_tx_success() noexcept {
  if (tec_ > 0) --tec_;
}

void ErrorState::on_rx_success() noexcept {
  if (rec_ > 127) {
    rec_ = 127;
  } else if (rec_ > 0) {
    --rec_;
  }
}

void ErrorState::reset() noexcept {
  tec_ = 0;
  rec_ = 0;
}

}  // namespace acf::can
