#include "can/bus.hpp"

#include <limits>

#include "metrics/metrics.hpp"

namespace acf::can {

namespace {
// Error frame: up to 6+6 flag bits, 8 delimiter bits, 3 intermission — plus
// the part of the frame transmitted before the error was detected.  We model
// the pre-error portion as half the frame and the error sequence as 20 bits.
constexpr std::size_t kErrorSequenceBits = 20;
// Bus-off recovery: 128 occurrences of 11 consecutive recessive bits.
constexpr std::size_t kBusOffRecoveryBits = 128 * 11;
const std::string kDetachedName = "<detached>";
}  // namespace

VirtualBus::VirtualBus(sim::Scheduler& scheduler, BusConfig config)
    : scheduler_(scheduler), config_(config), rng_(config.seed) {}

NodeId VirtualBus::attach(BusListener& listener, std::string name, FilterBank filters,
                          bool listen_only, bool batched) {
  flush_deliveries();  // keep the slab's tap membership stable per epoch
  Node node;
  node.listener = &listener;
  node.name = std::move(name);
  node.filters = std::move(filters);
  node.listen_only = listen_only;
  // Slab delivery is only sound for taps that accept every frame and never
  // transmit; anything else keeps the immediate per-frame path.
  node.batched = batched && listen_only && node.filters.empty();
  nodes_.push_back(std::move(node));
  fanout_dirty_ = true;
  return static_cast<NodeId>(nodes_.size() - 1);
}

void VirtualBus::detach(NodeId id) {
  if (id >= nodes_.size()) return;
  flush_deliveries();  // a departing batched tap still gets what it saw
  nodes_[id].listener = nullptr;
  if (!nodes_[id].tx_queue.empty()) note_tx_queue_emptied();
  nodes_[id].tx_queue.clear();
  fanout_dirty_ = true;
}

bool VirtualBus::can_transmit(const Node& node) const noexcept {
  return node.listener != nullptr && node.powered && !node.listen_only &&
         !node.errors.bus_off() && !node.in_bus_off_recovery;
}

bool VirtualBus::submit(NodeId sender, const CanFrame& frame) {
  if (sender >= nodes_.size()) return false;
  Node& node = nodes_[sender];
  ++stats_.frames_submitted;
  if (!can_transmit(node)) {
    if (node.errors.bus_off() || node.in_bus_off_recovery) ++stats_.drops_bus_off;
    return false;
  }
  if (node.tx_queue.size() >= config_.tx_queue_limit) {
    ++stats_.drops_queue_full;
    return false;
  }
  if (node.tx_queue.empty()) ++tx_pending_nodes_;
  node.tx_queue.push_back(frame, config_.tx_queue_limit);
  request_contest();
  return true;
}

void VirtualBus::flush_tx_queue(NodeId id) {
  if (id >= nodes_.size()) return;
  if (!nodes_[id].tx_queue.empty()) note_tx_queue_emptied();
  nodes_[id].tx_queue.clear();
}

void VirtualBus::set_power(NodeId id, bool on) {
  if (id >= nodes_.size()) return;
  Node& node = nodes_[id];
  if (node.powered == on) return;
  flush_deliveries();  // keep the slab's tap membership stable per epoch
  node.powered = on;
  fanout_dirty_ = true;
  if (!on) {
    if (!node.tx_queue.empty()) note_tx_queue_emptied();
    node.tx_queue.clear();
  } else {
    node.errors.reset();  // power cycle clears the controller's counters
    node.in_bus_off_recovery = false;
    request_contest();
  }
}

bool VirtualBus::powered(NodeId id) const {
  return id < nodes_.size() && nodes_[id].powered;
}

const ErrorState& VirtualBus::error_state(NodeId id) const {
  static const ErrorState kEmpty;
  return id < nodes_.size() ? nodes_[id].errors : kEmpty;
}

bool VirtualBus::bus_off_recovering(NodeId id) const {
  return id < nodes_.size() && nodes_[id].in_bus_off_recovery;
}

void VirtualBus::force_tx_errors(NodeId id, std::uint32_t count) {
  if (id < nodes_.size()) nodes_[id].forced_tx_errors += count;
}

std::uint32_t VirtualBus::forced_tx_errors_remaining(NodeId id) const {
  return id < nodes_.size() ? nodes_[id].forced_tx_errors : 0;
}

void VirtualBus::inject_error_frame() {
  ++stats_.error_frames;
  const sim::SimTime now = scheduler_.now();
  for (auto& node : nodes_) {
    if (node.listener == nullptr || !node.powered) continue;
    node.errors.on_rx_error();
    node.listener->on_error_frame(now);
  }
}

std::size_t VirtualBus::pending(NodeId id) const {
  return id < nodes_.size() ? nodes_[id].tx_queue.size() : 0;
}

const std::string& VirtualBus::node_name(NodeId id) const {
  return id < nodes_.size() ? nodes_[id].name : kDetachedName;
}

std::size_t VirtualBus::node_count() const noexcept {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.listener != nullptr) ++n;
  }
  return n;
}

sim::Duration VirtualBus::frame_duration(const CanFrame& frame) const {
  return frame_time(frame, config_.bitrate, config_.fd_data_bitrate);
}

void VirtualBus::set_batched(NodeId id, bool batched) {
  if (id >= nodes_.size()) return;
  Node& node = nodes_[id];
  const bool want = batched && node.listen_only && node.filters.empty();
  if (node.batched == want) return;
  flush_deliveries();
  node.batched = want;
  fanout_dirty_ = true;
}

void VirtualBus::refresh_fanout() {
  fanout_.clear();
  batch_taps_.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.listener == nullptr || !node.powered) continue;
    (node.batched ? batch_taps_ : fanout_).push_back(id);
  }
  fanout_dirty_ = false;
}

void VirtualBus::flush_deliveries() {
  if (delivery_slab_.empty()) return;
  if (fanout_dirty_) refresh_fanout();
  // Swap the slab out so a tap reading its own state from inside
  // on_frame_batch (which re-enters flush_deliveries) sees it empty.
  std::vector<BusDelivery> batch;
  batch.swap(delivery_slab_);
  for (NodeId id : batch_taps_) {
    Node& node = nodes_[id];
    if (node.listener == nullptr) continue;
    node.listener->on_frame_batch(batch);
  }
  batch.clear();
  delivery_slab_.swap(batch);  // hand the arena back for reuse
}

void VirtualBus::request_contest() {
  if (busy_ || contest_pending_) return;
  if (tx_pending_nodes_ == 0) return;  // a contest could only no-op
  contest_pending_ = true;
  // Zero-delay event: every node whose tx event fires at the same simulated
  // instant has enqueued by the time the contest runs, which is what makes
  // same-instant arbitration (lowest id wins) come out right.
  scheduler_.schedule_at(scheduler_.now(), [this] { run_contest(); });
}

void VirtualBus::run_contest() {
  contest_pending_ = false;
  if (busy_) return;

  NodeId winner = kInvalidNode;
  std::uint64_t best_rank = std::numeric_limits<std::uint64_t>::max();
  std::size_t contenders = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    Node& node = nodes_[id];
    if (!can_transmit(node) || node.tx_queue.empty()) continue;
    ++contenders;
    const std::uint64_t rank = node.tx_queue.front().arbitration_rank();
    if (rank < best_rank) {
      best_rank = rank;
      winner = id;
    }
  }
  if (winner == kInvalidNode) return;
  if (contenders > 1) ++stats_.arbitration_contests;

  const CanFrame& frame = nodes_[winner].tx_queue.front();
  bool corrupted = config_.corruption_probability > 0.0 &&
                   rng_.next_bool(config_.corruption_probability);
  if (nodes_[winner].forced_tx_errors > 0) {
    --nodes_[winner].forced_tx_errors;
    corrupted = true;
  }
  busy_ = true;

  if (!corrupted) {
    const sim::Duration duration = frame_duration(frame);
    stats_.busy_time += duration;
    scheduler_.schedule_after(duration, [this, winner] { complete_transmission(winner); });
    return;
  }

  // Corrupted transmission: the frame is aborted mid-way and an error frame
  // follows.  The transmitter takes TEC += 8 and will retry the same frame.
  const sim::Duration duration =
      frame_duration(frame) / 2 + bit_time(config_.bitrate) * kErrorSequenceBits;
  stats_.busy_time += duration;
  scheduler_.schedule_after(duration, [this, winner] {
    busy_ = false;
    ++stats_.error_frames;
    const sim::SimTime now = scheduler_.now();
    Node& tx = nodes_[winner];
    tx.errors.on_tx_error();
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      Node& node = nodes_[id];
      if (node.listener == nullptr || !node.powered) continue;
      if (id != winner) node.errors.on_rx_error();
      node.listener->on_error_frame(now);
    }
    if (tx.errors.bus_off()) {
      if (!tx.tx_queue.empty()) note_tx_queue_emptied();
      tx.tx_queue.clear();
      ++stats_.drops_bus_off;
      if (config_.auto_bus_off_recovery) begin_bus_off_recovery(winner);
    }
    request_contest();
  });
}

void VirtualBus::complete_transmission(NodeId winner) {
  busy_ = false;
  const sim::SimTime now = scheduler_.now();
  Node& tx = nodes_[winner];
  if (tx.tx_queue.empty()) {
    // Queue was flushed (reset/power-off) mid-transmission; treat the frame
    // as aborted with nothing delivered.
    request_contest();
    return;
  }
  const CanFrame frame = tx.tx_queue.front();
  tx.tx_queue.pop_front();
  if (tx.tx_queue.empty()) note_tx_queue_emptied();
  tx.errors.on_tx_success();
  ++stats_.frames_delivered;

  if (fanout_dirty_) refresh_fanout();
  for (NodeId id : fanout_) {
    Node& node = nodes_[id];
    // Re-validate: an earlier callback this delivery may have detached or
    // powered the node down (the rebuild itself is deferred).
    if (id == winner || node.listener == nullptr || !node.powered) continue;
    node.errors.on_rx_success();
    if (!node.filters.accepts(frame)) continue;
    ++stats_.deliveries;
    node.listener->on_frame(frame, now);
  }
  if (!batch_taps_.empty()) {
    // Batched taps accept everything, so the slab carries the frame once and
    // the per-tap delivery happens contiguously at flush time.
    for (NodeId id : batch_taps_) {
      nodes_[id].errors.on_rx_success();
      ++stats_.deliveries;
    }
    delivery_slab_.push_back(BusDelivery{frame, now});
    if (delivery_slab_.size() >= kDeliverySlabCapacity) flush_deliveries();
  }
  if (tx.listener != nullptr) tx.listener->on_tx_complete(frame, now);
  request_contest();
}

void VirtualBus::begin_bus_off_recovery(NodeId id) {
  Node& node = nodes_[id];
  node.in_bus_off_recovery = true;
  const sim::Duration wait = bit_time(config_.bitrate) * kBusOffRecoveryBits;
  scheduler_.schedule_after(wait, [this, id] {
    Node& n = nodes_[id];
    if (!n.in_bus_off_recovery) return;  // power-cycled meanwhile
    n.in_bus_off_recovery = false;
    n.errors.reset();
    request_contest();
  });
}

void VirtualBus::publish_metrics(metrics::Registry& registry) const {
  registry.counter("can.bus.frames_submitted").add(stats_.frames_submitted);
  registry.counter("can.bus.frames_delivered").add(stats_.frames_delivered);
  registry.counter("can.bus.deliveries").add(stats_.deliveries);
  registry.counter("can.bus.error_frames").add(stats_.error_frames);
  registry.counter("can.bus.drops_bus_off").add(stats_.drops_bus_off);
  registry.counter("can.bus.drops_queue_full").add(stats_.drops_queue_full);
  registry.counter("can.bus.arbitration_contests").add(stats_.arbitration_contests);
  const auto busy_ns = stats_.busy_time.count();
  if (busy_ns > 0) {
    registry.counter("can.bus.busy_ns").add(static_cast<std::uint64_t>(busy_ns));
  }
}

}  // namespace acf::can
