// Classic-CAN wire codec (bit-exact, including stuffing and CRC-15) and
// frame-time computation for both classic and FD frames.
//
// The virtual bus uses frame_time() to occupy the bus for exactly as long as
// a real 500 kb/s bus would, which is what makes the paper's 1 ms fuzzer
// transmit period and the Table V time-to-unlock results meaningful.
#pragma once

#include <cstdint>
#include <optional>

#include "can/bitstream.hpp"
#include "can/frame.hpp"
#include "sim/time.hpp"

namespace acf::can {

/// Nominal bit time at a given bitrate (e.g. 2 us at 500 kb/s).
constexpr sim::Duration bit_time(std::uint32_t bits_per_second) noexcept {
  return sim::Duration{1'000'000'000ULL / (bits_per_second == 0 ? 1 : bits_per_second)};
}

/// Default in-vehicle bitrates.  500 kb/s is "a common transmission speed
/// used in cars" per the paper; 2 Mb/s is a typical FD data-phase rate.
inline constexpr std::uint32_t kDefaultBitrate = 500'000;
inline constexpr std::uint32_t kDefaultFdDataBitrate = 2'000'000;

/// Serialises a classic frame's SOF..CRC region, unstuffed ("logical" bits).
/// FD frames are not supported by the classic codec; returns empty.
BitVec encode_logical(const CanFrame& frame);

/// Parses logical bits back into a frame, verifying the CRC-15.
/// Returns nullopt on malformed structure or CRC mismatch.
std::optional<CanFrame> decode_logical(std::span<const std::uint8_t> bits);

/// Full wire image: stuffed SOF..CRC region followed by the fixed-form tail
/// (CRC delimiter, ACK slot, ACK delimiter, EOF).  `acked` sets the ACK slot
/// dominant as a receiving node would.
BitVec encode_wire(const CanFrame& frame, bool acked = true);

/// Inverse of encode_wire.  Returns nullopt on stuffing violation, bad form
/// (delimiters/EOF not recessive) or CRC mismatch.
std::optional<CanFrame> decode_wire(std::span<const std::uint8_t> bits);

/// Exact number of bits the frame occupies on the wire, including stuff
/// bits, the tail and the 3-bit interframe space.  For FD frames this uses
/// the ISO 11898-1 field sizes with the dynamic-stuff count computed on the
/// actual header+data bits and the CRC field's fixed-stuff layout.
std::size_t wire_bit_count(const CanFrame& frame);

/// Time the frame occupies the bus.  Classic frames run entirely at
/// `nominal_bps`; FD frames with BRS run their data phase at `data_bps`.
sim::Duration frame_time(const CanFrame& frame, std::uint32_t nominal_bps = kDefaultBitrate,
                         std::uint32_t data_bps = kDefaultFdDataBitrate);

/// Worst-case stuffed length of a classic frame with `payload_len` bytes
/// (used by capacity planning in the analysis layer).
std::size_t worst_case_bit_count(std::size_t payload_len, IdFormat format) noexcept;

}  // namespace acf::can
