// NodeSupervisor: a scheduler-driven watchdog over VirtualBus nodes.
//
// The paper's endurance runs drive real components into visible failure —
// bus-off transmitters, a latched CrAsH cluster, silent ECUs — and a
// credible long-running harness must keep itself (and, where possible, the
// target) alive while that happens.  The supervisor watches attached nodes
// for three degradation signatures:
//
//  - silent: a node that owns periodic ids has stopped transmitting for a
//    whole heartbeat window (firmware hang, crash latch);
//  - babbling: a node exceeding a frames-per-second ceiling (the babbling-
//    idiot failure CAN's fault confinement only partially contains);
//  - bus-off: the node's TEC crossed 255 and it left the bus.
//
// Detection triggers a power-cycle restart (flush + off + on) with a
// per-node restart budget and exponential backoff between restarts, and
// every decision is recorded as a SupervisionEvent that the oracle layer
// (oracle::SupervisionOracle) folds into campaign verdicts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "can/bus.hpp"
#include "sim/scheduler.hpp"

namespace acf::resilience {

enum class SupervisionEventType : std::uint8_t {
  kSilentNode,       // missed its heartbeat window
  kBabblingNode,     // exceeded the tx rate ceiling
  kBusOff,           // fault confinement took the node off the bus
  kRestart,          // supervisor power-cycled the node
  kRecovered,        // node transmitted again after a restart
  kBudgetExhausted,  // restart budget spent; node abandoned
};

const char* to_string(SupervisionEventType type) noexcept;

struct SupervisionEvent {
  SupervisionEventType type = SupervisionEventType::kRestart;
  can::NodeId node = can::kInvalidNode;
  std::string node_name;
  std::string detail;
  sim::SimTime time{0};

  std::string summary() const;
};

struct SupervisorConfig {
  /// Node-health polling interval.
  sim::Duration poll_period{std::chrono::milliseconds(10)};
  /// A watched node transmitting none of its ids for this long is silent.
  sim::Duration heartbeat_window{std::chrono::milliseconds(500)};
  /// Frames/second ceiling per node (0 disables babble detection).
  double babble_frames_per_second = 0.0;
  /// Sliding window over which the babble rate is measured.
  sim::Duration babble_window{std::chrono::milliseconds(100)};
  /// Power-off time of a restart cycle.
  sim::Duration restart_off_time{std::chrono::milliseconds(50)};
  /// Restarts allowed per node before it is abandoned (0 = unlimited).
  std::uint32_t restart_budget = 5;
  /// Delay before a node becomes eligible for its next restart; doubles
  /// (by default) after every restart, like any sane process supervisor.
  sim::Duration restart_backoff{std::chrono::milliseconds(100)};
  double restart_backoff_multiplier = 2.0;
  sim::Duration max_restart_backoff{std::chrono::seconds(5)};
};

struct SupervisorStats {
  std::uint64_t silent_detections = 0;
  std::uint64_t babble_detections = 0;
  std::uint64_t bus_off_detections = 0;
  std::uint64_t restarts = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t budget_exhaustions = 0;
};

class NodeSupervisor : private can::BusListener {
 public:
  /// Attaches to `bus` as a listen-only tap.  Both references must outlive
  /// the supervisor.
  NodeSupervisor(sim::Scheduler& scheduler, can::VirtualBus& bus,
                 SupervisorConfig config = {});
  ~NodeSupervisor() override;

  NodeSupervisor(const NodeSupervisor&) = delete;
  NodeSupervisor& operator=(const NodeSupervisor&) = delete;

  /// Watches a node.  `tx_ids` are the CAN ids the node is known to
  /// transmit — on a broadcast bus they are how observed traffic is
  /// attributed back to its sender for silence/babble detection.  A node
  /// watched with no ids is only checked for bus-off.
  void watch(can::NodeId node, std::vector<std::uint32_t> tx_ids = {});
  void unwatch(can::NodeId node);

  /// Arms the polling event.  Idempotent.
  void start();
  void stop();

  /// Replaces the default restart action (bus power-cycle + queue flush).
  /// ECU-backed nodes wire their own Ecu::power_cycle here so controller
  /// and model state stay in step.
  void set_restart_action(std::function<void(can::NodeId)> action) {
    restart_action_ = std::move(action);
  }

  void set_on_event(std::function<void(const SupervisionEvent&)> callback) {
    on_event_ = std::move(callback);
  }

  const SupervisorStats& stats() const noexcept { return stats_; }
  const std::vector<SupervisionEvent>& events() const noexcept { return events_; }
  std::uint32_t restarts(can::NodeId node) const;
  bool abandoned(can::NodeId node) const;
  std::size_t watched_count() const noexcept { return watched_.size(); }

 private:
  struct Watched {
    can::NodeId node = can::kInvalidNode;
    std::vector<std::uint32_t> tx_ids;
    sim::SimTime last_seen{0};
    std::uint64_t frames_in_window = 0;
    sim::SimTime window_start{0};
    std::uint32_t restart_count = 0;
    sim::Duration next_backoff{0};
    sim::SimTime eligible_at{0};  // next restart no earlier than this
    bool restart_in_flight = false;
    bool awaiting_recovery = false;
    bool degraded = false;  // a detection has fired and not yet cleared
    bool abandoned = false;
    sim::EventId restart_event{};
  };

  void on_frame(const can::CanFrame& frame, sim::SimTime time) override;
  void tick();
  void check(Watched& watched, sim::SimTime now);
  void restart(Watched& watched, SupervisionEventType cause, std::string detail);
  void emit(SupervisionEventType type, const Watched& watched, std::string detail);

  sim::Scheduler& scheduler_;
  can::VirtualBus& bus_;
  SupervisorConfig config_;
  can::NodeId tap_node_ = can::kInvalidNode;
  sim::EventId poll_event_{};
  bool running_ = false;

  std::vector<Watched> watched_;
  std::unordered_map<std::uint32_t, std::size_t> id_owner_;  // CAN id -> index
  SupervisorStats stats_;
  std::vector<SupervisionEvent> events_;
  std::function<void(can::NodeId)> restart_action_;
  std::function<void(const SupervisionEvent&)> on_event_;
};

}  // namespace acf::resilience
