// ReconnectGate: the PR 1 retry/backoff + circuit-breaker machinery
// (transport::RetryPolicy / transport::CircuitBreakerPolicy, the exact
// policies ResilientTransport runs on the simulated clock) re-hosted on the
// wall clock for the fleet worker's coordinator connection.  Transient
// socket faults — coordinator restarting, listen queue overflow, a dropped
// link — become jittered exponential backoff instead of an aborted
// campaign, and a genuinely dead coordinator trips the breaker so the
// worker fails fast through escalating open windows before giving up.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "transport/resilient_transport.hpp"
#include "util/rng.hpp"

namespace acf::resilience {

struct ReconnectStats {
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_recoveries = 0;
};

class ReconnectGate {
 public:
  /// `give_up_after` bounds total consecutive failures (across breaker
  /// cycles) before next_delay() reports permanent failure; 0 = never.
  ReconnectGate(transport::RetryPolicy retry, transport::CircuitBreakerPolicy breaker,
                std::uint32_t give_up_after = 0);

  /// Wall-clock time to wait before the next connection attempt, or nullopt
  /// when the gate has given up.  The first call (and the first after any
  /// success) returns zero delay.
  std::optional<std::chrono::milliseconds> next_delay();

  void note_success() noexcept;
  void note_failure();

  transport::BreakerState state() const noexcept { return state_; }
  std::uint32_t consecutive_failures() const noexcept { return consecutive_failures_; }
  const ReconnectStats& stats() const noexcept { return stats_; }

 private:
  std::chrono::milliseconds backoff_for(std::uint32_t failures);
  void trip_breaker();

  transport::RetryPolicy retry_;
  transport::CircuitBreakerPolicy breaker_;
  std::uint32_t give_up_after_;
  util::Rng jitter_rng_;

  transport::BreakerState state_ = transport::BreakerState::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::chrono::milliseconds current_open_{0};
  ReconnectStats stats_;
};

}  // namespace acf::resilience
