#include "resilience/supervisor.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace acf::resilience {

const char* to_string(SupervisionEventType type) noexcept {
  switch (type) {
    case SupervisionEventType::kSilentNode: return "silent-node";
    case SupervisionEventType::kBabblingNode: return "babbling-node";
    case SupervisionEventType::kBusOff: return "bus-off";
    case SupervisionEventType::kRestart: return "restart";
    case SupervisionEventType::kRecovered: return "recovered";
    case SupervisionEventType::kBudgetExhausted: return "budget-exhausted";
  }
  return "?";
}

std::string SupervisionEvent::summary() const {
  std::ostringstream out;
  out << "[" << to_string(type) << "] " << node_name << " t=" << sim::format_millis(time)
      << " ms";
  if (!detail.empty()) out << ": " << detail;
  return out.str();
}

NodeSupervisor::NodeSupervisor(sim::Scheduler& scheduler, can::VirtualBus& bus,
                               SupervisorConfig config)
    : scheduler_(scheduler), bus_(bus), config_(config) {
  tap_node_ = bus_.attach(*this, "supervisor", {}, /*listen_only=*/true);
}

NodeSupervisor::~NodeSupervisor() {
  stop();
  for (auto& watched : watched_) scheduler_.cancel(watched.restart_event);
  bus_.detach(tap_node_);
}

void NodeSupervisor::watch(can::NodeId node, std::vector<std::uint32_t> tx_ids) {
  Watched watched;
  watched.node = node;
  watched.tx_ids = std::move(tx_ids);
  watched.last_seen = scheduler_.now();
  watched.window_start = scheduler_.now();
  watched.next_backoff = config_.restart_backoff;
  watched_.push_back(std::move(watched));
  for (const std::uint32_t id : watched_.back().tx_ids) {
    id_owner_[id] = watched_.size() - 1;
  }
}

void NodeSupervisor::unwatch(can::NodeId node) {
  for (auto& watched : watched_) {
    if (watched.node != node) continue;
    for (const std::uint32_t id : watched.tx_ids) id_owner_.erase(id);
    watched.node = can::kInvalidNode;  // indices stay stable for in-flight events
  }
}

void NodeSupervisor::start() {
  if (running_) return;
  running_ = true;
  poll_event_ = scheduler_.schedule_every(config_.poll_period, [this] { tick(); });
}

void NodeSupervisor::stop() {
  if (!running_) return;
  running_ = false;
  scheduler_.cancel(poll_event_);
}

std::uint32_t NodeSupervisor::restarts(can::NodeId node) const {
  for (const auto& watched : watched_) {
    if (watched.node == node) return watched.restart_count;
  }
  return 0;
}

bool NodeSupervisor::abandoned(can::NodeId node) const {
  for (const auto& watched : watched_) {
    if (watched.node == node) return watched.abandoned;
  }
  return false;
}

void NodeSupervisor::emit(SupervisionEventType type, const Watched& watched,
                          std::string detail) {
  SupervisionEvent event;
  event.type = type;
  event.node = watched.node;
  event.node_name = bus_.node_name(watched.node);
  event.detail = std::move(detail);
  event.time = scheduler_.now();
  events_.push_back(event);
  if (on_event_) on_event_(events_.back());
}

void NodeSupervisor::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  const auto it = id_owner_.find(frame.id());
  if (it == id_owner_.end()) return;
  Watched& watched = watched_[it->second];
  watched.last_seen = time;
  ++watched.frames_in_window;
  if (watched.awaiting_recovery && !watched.restart_in_flight) {
    watched.awaiting_recovery = false;
    watched.degraded = false;
    watched.next_backoff = config_.restart_backoff;  // healthy again: de-escalate
    ++stats_.recoveries;
    emit(SupervisionEventType::kRecovered, watched, "transmitting again after restart");
  }
}

void NodeSupervisor::tick() {
  const sim::SimTime now = scheduler_.now();
  for (auto& watched : watched_) {
    if (watched.node == can::kInvalidNode || watched.abandoned ||
        watched.restart_in_flight) {
      continue;
    }
    check(watched, now);
  }
}

void NodeSupervisor::check(Watched& watched, sim::SimTime now) {
  // --- bus-off: the strongest signal; fault confinement already fired ------
  const bool bus_off =
      bus_.error_state(watched.node).bus_off() || bus_.bus_off_recovering(watched.node);
  if (!bus_off && watched.awaiting_recovery && watched.tx_ids.empty()) {
    // No ids to attribute traffic by: back-on-the-bus is the recovery signal.
    watched.awaiting_recovery = false;
    watched.degraded = false;
    watched.next_backoff = config_.restart_backoff;
    ++stats_.recoveries;
    emit(SupervisionEventType::kRecovered, watched, "error-active after restart");
  }
  if (bus_off) {
    if (!watched.degraded) {
      watched.degraded = true;
      ++stats_.bus_off_detections;
      std::ostringstream detail;
      detail << "TEC=" << bus_.error_state(watched.node).tec();
      emit(SupervisionEventType::kBusOff, watched, detail.str());
    }
    restart(watched, SupervisionEventType::kBusOff, "bus-off recovery");
    return;
  }

  // --- babbling: tx rate over the ceiling within the sliding window --------
  if (config_.babble_frames_per_second > 0.0 && !watched.tx_ids.empty()) {
    const sim::Duration elapsed = now - watched.window_start;
    if (elapsed >= config_.babble_window) {
      const double rate =
          static_cast<double>(watched.frames_in_window) / sim::to_seconds(elapsed);
      watched.window_start = now;
      watched.frames_in_window = 0;
      if (rate > config_.babble_frames_per_second) {
        if (!watched.degraded) {
          watched.degraded = true;
          ++stats_.babble_detections;
          std::ostringstream detail;
          detail << rate << " frames/s over ceiling " << config_.babble_frames_per_second;
          emit(SupervisionEventType::kBabblingNode, watched, detail.str());
        }
        restart(watched, SupervisionEventType::kBabblingNode, "babble containment");
        return;
      }
    }
  }

  // --- silence: none of the node's ids seen for a whole heartbeat window ---
  // (last_seen is reset when a restart completes, so a node that stays dead
  // after a restart is re-detected one window later and the budget drains.)
  if (!watched.tx_ids.empty() && now - watched.last_seen > config_.heartbeat_window) {
    if (!watched.degraded) {
      watched.degraded = true;
      ++stats_.silent_detections;
      std::ostringstream detail;
      detail << "no frame for " << sim::format_millis(now - watched.last_seen) << " ms";
      emit(SupervisionEventType::kSilentNode, watched, detail.str());
    }
    restart(watched, SupervisionEventType::kSilentNode, "silent node");
    return;
  }

  if (!watched.awaiting_recovery) watched.degraded = false;
}

void NodeSupervisor::restart(Watched& watched, SupervisionEventType cause,
                             std::string detail) {
  const sim::SimTime now = scheduler_.now();
  if (now < watched.eligible_at) return;  // still backing off
  if (config_.restart_budget > 0 && watched.restart_count >= config_.restart_budget) {
    watched.abandoned = true;
    ++stats_.budget_exhaustions;
    emit(SupervisionEventType::kBudgetExhausted, watched,
         "after " + std::to_string(watched.restart_count) + " restarts (" +
             to_string(cause) + ")");
    return;
  }

  ++watched.restart_count;
  ++stats_.restarts;
  watched.restart_in_flight = true;
  emit(SupervisionEventType::kRestart, watched,
       std::move(detail) + " (restart " + std::to_string(watched.restart_count) + ")");

  // Exponential backoff before the *next* restart becomes eligible.
  watched.eligible_at = now + config_.restart_off_time + watched.next_backoff;
  const auto escalated = std::chrono::duration_cast<sim::Duration>(
      watched.next_backoff * config_.restart_backoff_multiplier);
  watched.next_backoff = std::min(escalated, config_.max_restart_backoff);

  const std::size_t index = static_cast<std::size_t>(&watched - watched_.data());
  if (restart_action_) {
    restart_action_(watched.node);
    watched.restart_event = scheduler_.schedule_after(config_.restart_off_time, [this, index] {
      Watched& w = watched_[index];
      w.restart_in_flight = false;
      w.awaiting_recovery = true;
      w.last_seen = scheduler_.now();
      w.window_start = scheduler_.now();
      w.frames_in_window = 0;
    });
    return;
  }

  // Default action: power-cycle the controller through the bus (flush is
  // implicit in set_power(off)); counters reset on power-up.
  bus_.set_power(watched.node, false);
  watched.restart_event = scheduler_.schedule_after(config_.restart_off_time, [this, index] {
    Watched& w = watched_[index];
    bus_.set_power(w.node, true);
    w.restart_in_flight = false;
    w.awaiting_recovery = true;
    w.last_seen = scheduler_.now();
    w.window_start = scheduler_.now();
    w.frames_in_window = 0;
  });
}

}  // namespace acf::resilience
