#include "resilience/reconnect.hpp"

#include <algorithm>

namespace acf::resilience {

namespace {

std::chrono::milliseconds to_wall_ms(sim::Duration d) {
  // The shared policies express intervals as simulated durations; on the
  // wall clock they are read 1:1, floored to a millisecond so a sub-ms
  // backoff still yields.
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(d);
  return std::max(ms, std::chrono::milliseconds(1));
}

}  // namespace

ReconnectGate::ReconnectGate(transport::RetryPolicy retry,
                             transport::CircuitBreakerPolicy breaker,
                             std::uint32_t give_up_after)
    : retry_(retry), breaker_(breaker), give_up_after_(give_up_after),
      jitter_rng_(retry.jitter_seed), current_open_(to_wall_ms(breaker.open_duration)) {}

std::chrono::milliseconds ReconnectGate::backoff_for(std::uint32_t failures) {
  double scale = 1.0;
  for (std::uint32_t i = 1; i < failures; ++i) scale *= retry_.backoff_multiplier;
  auto base = std::chrono::duration_cast<sim::Duration>(retry_.initial_backoff * scale);
  base = std::min(base, retry_.max_backoff);
  if (retry_.jitter > 0.0) {
    const double factor = 1.0 + retry_.jitter * jitter_rng_.next_double();
    base = std::chrono::duration_cast<sim::Duration>(base * factor);
  }
  return to_wall_ms(base);
}

std::optional<std::chrono::milliseconds> ReconnectGate::next_delay() {
  if (give_up_after_ > 0 && consecutive_failures_ >= give_up_after_) return std::nullopt;
  ++stats_.attempts;
  if (consecutive_failures_ == 0) return std::chrono::milliseconds(0);
  if (state_ == transport::BreakerState::kOpen) {
    // Cool-down: wait out the open window, then half-open for one probe.
    state_ = transport::BreakerState::kHalfOpen;
    return current_open_;
  }
  return backoff_for(consecutive_failures_);
}

void ReconnectGate::note_success() noexcept {
  consecutive_failures_ = 0;
  if (state_ != transport::BreakerState::kClosed) ++stats_.breaker_recoveries;
  state_ = transport::BreakerState::kClosed;
  current_open_ = to_wall_ms(breaker_.open_duration);
}

void ReconnectGate::trip_breaker() {
  state_ = transport::BreakerState::kOpen;
  ++stats_.breaker_trips;
  const auto escalated = std::chrono::duration_cast<std::chrono::milliseconds>(
      current_open_ * breaker_.open_backoff_multiplier);
  current_open_ = std::min(escalated, to_wall_ms(breaker_.max_open_duration));
}

void ReconnectGate::note_failure() {
  ++consecutive_failures_;
  ++stats_.failures;
  if (state_ == transport::BreakerState::kHalfOpen) {
    // Probe failed: re-open with the escalated window.
    trip_breaker();
    return;
  }
  if (state_ == transport::BreakerState::kClosed &&
      consecutive_failures_ >= breaker_.failure_threshold) {
    trip_breaker();
  }
}

}  // namespace acf::resilience
