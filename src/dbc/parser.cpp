#include "dbc/parser.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace acf::dbc {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Consumes the next whitespace-delimited token.
std::string_view next_token(std::string_view& s) {
  s = trim(s);
  std::size_t end = 0;
  while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
  const std::string_view token = s.substr(0, end);
  s.remove_prefix(end);
  return token;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(std::string_view token, double& out) {
  // from_chars for double is available in libstdc++ 11+; keep it simple.
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

struct SignalLine {
  SignalDef def;
  bool ok = false;
  std::string error;
};

/// " SG_ Name : 8|16@1+ (0.25,0) [0|8000] "rpm" RX1,RX2"
SignalLine parse_signal(std::string_view rest) {
  SignalLine out;
  std::string_view s = rest;
  const std::string_view name = next_token(s);
  if (name.empty()) {
    out.error = "missing signal name";
    return out;
  }
  out.def.name = std::string(name);
  std::string_view colon = next_token(s);
  if (colon != ":") {
    // Multiplexer indicators ("M", "m0") sit between name and colon; accept
    // and ignore them.
    colon = next_token(s);
    if (colon != ":") {
      out.error = "expected ':'";
      return out;
    }
  }
  // start|len@order sign
  const std::string_view layout = next_token(s);
  const std::size_t pipe = layout.find('|');
  const std::size_t at = layout.find('@');
  if (pipe == std::string_view::npos || at == std::string_view::npos || at + 2 > layout.size()) {
    out.error = "bad layout '" + std::string(layout) + "'";
    return out;
  }
  std::uint16_t start = 0;
  std::uint16_t length = 0;
  if (!parse_number(layout.substr(0, pipe), start) ||
      !parse_number(layout.substr(pipe + 1, at - pipe - 1), length) || length == 0 ||
      length > 64) {
    out.error = "bad start/length in '" + std::string(layout) + "'";
    return out;
  }
  out.def.start_bit = start;
  out.def.bit_length = length;
  const char order = layout[at + 1];
  out.def.byte_order = (order == '1') ? ByteOrder::kLittleEndian : ByteOrder::kBigEndian;
  if (at + 2 < layout.size()) out.def.is_signed = layout[at + 2] == '-';

  // (scale,offset)
  const std::string_view factors = next_token(s);
  if (factors.size() >= 3 && factors.front() == '(' && factors.back() == ')') {
    const std::string_view inner = factors.substr(1, factors.size() - 2);
    const std::size_t comma = inner.find(',');
    double scale = 1.0;
    double offset = 0.0;
    if (comma == std::string_view::npos || !parse_double(inner.substr(0, comma), scale) ||
        !parse_double(inner.substr(comma + 1), offset)) {
      out.error = "bad factors '" + std::string(factors) + "'";
      return out;
    }
    out.def.scale = scale;
    out.def.offset = offset;
  }

  // [min|max]
  const std::string_view range = next_token(s);
  if (range.size() >= 3 && range.front() == '[' && range.back() == ']') {
    const std::string_view inner = range.substr(1, range.size() - 2);
    const std::size_t pipe2 = inner.find('|');
    double lo = 0.0;
    double hi = 0.0;
    if (pipe2 == std::string_view::npos || !parse_double(inner.substr(0, pipe2), lo) ||
        !parse_double(inner.substr(pipe2 + 1), hi)) {
      out.error = "bad range '" + std::string(range) + "'";
      return out;
    }
    out.def.min = lo;
    out.def.max = hi;
  }

  // "unit"
  s = trim(s);
  if (!s.empty() && s.front() == '"') {
    const std::size_t close = s.find('"', 1);
    if (close != std::string_view::npos) {
      out.def.unit = std::string(s.substr(1, close - 1));
    }
  }
  out.ok = true;
  return out;
}

/// Shortest round-trip rendering for signal factors/ranges: %g's six
/// significant digits turn 16383.9921875 into 16384, so a parse→print→parse
/// cycle would silently change declared ranges.  to_chars emits the shortest
/// string that reparses to the identical double (inf/nan included).
std::string fmt_g(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return ec == std::errc{} ? std::string(buf, ptr) : std::string("0");
}

}  // namespace

ParseResult parse_dbc(std::string_view text) {
  ParseResult result;
  MessageDef current;
  bool in_message = false;
  int line_no = 0;

  auto flush = [&] {
    if (in_message) result.database.add(std::move(current));
    current = MessageDef{};
    in_message = false;
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw_line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.empty()) continue;

    std::string_view s = line;
    const std::string_view keyword = next_token(s);

    if (keyword == "BU_:") {
      for (std::string_view node = next_token(s); !node.empty(); node = next_token(s)) {
        result.nodes.emplace_back(node);
      }
    } else if (keyword == "BO_") {
      flush();
      const std::string_view id_token = next_token(s);
      std::string_view name_token = next_token(s);
      const std::string_view dlc_token = next_token(s);
      const std::string_view sender = next_token(s);
      std::uint32_t id = 0;
      std::uint32_t dlc = 0;
      if (!parse_number(id_token, id) || name_token.empty() || !parse_number(dlc_token, dlc) ||
          dlc > can::kMaxClassicPayload) {
        result.errors.push_back("line " + std::to_string(line_no) + ": bad BO_ line");
        continue;
      }
      if (name_token.back() == ':') name_token.remove_suffix(1);
      // Bit 31 set marks an extended id in DBC files.
      current.format =
          (id & 0x80000000u) != 0 ? can::IdFormat::kExtended : can::IdFormat::kStandard;
      current.id = id & 0x1FFFFFFFu;
      current.name = std::string(name_token);
      current.dlc = static_cast<std::uint8_t>(dlc);
      current.sender = std::string(sender);
      in_message = true;
    } else if (keyword == "SG_") {
      if (!in_message) {
        result.errors.push_back("line " + std::to_string(line_no) + ": SG_ outside BO_");
        continue;
      }
      SignalLine sig = parse_signal(s);
      if (!sig.ok) {
        result.errors.push_back("line " + std::to_string(line_no) + ": " + sig.error);
        continue;
      }
      if (!sig.def.fits(current.dlc)) {
        result.errors.push_back("line " + std::to_string(line_no) + ": signal '" +
                                sig.def.name + "' exceeds message DLC");
        continue;
      }
      current.signals.push_back(std::move(sig.def));
    } else if (keyword == "BA_") {
      // BA_ "GenMsgCycleTime" BO_ <id> <ms>;
      std::string_view attr = next_token(s);
      if (attr == "\"GenMsgCycleTime\"") {
        const std::string_view kind = next_token(s);
        const std::string_view id_token = next_token(s);
        std::string_view value_token = next_token(s);
        if (!value_token.empty() && value_token.back() == ';') value_token.remove_suffix(1);
        std::uint32_t id = 0;
        std::uint32_t ms = 0;
        if (kind == "BO_" && parse_number(id_token, id) && parse_number(value_token, ms)) {
          flush();  // attributes come after all BO_ blocks; close any open one
          if (const MessageDef* existing = result.database.by_id(id & 0x1FFFFFFFu)) {
            MessageDef updated = *existing;
            updated.cycle_time_ms = ms;
            result.database.add(std::move(updated));
          }
        }
      }
    }
    // VERSION, CM_, VAL_, NS_ blocks etc. are intentionally skipped.
  }
  flush();
  return result;
}

std::string to_dbc_text(const Database& database, std::span<const std::string> nodes) {
  std::ostringstream out;
  out << "VERSION \"\"\n\nBU_:";
  for (const auto& node : nodes) out << ' ' << node;
  out << "\n\n";
  for (const auto& message : database.messages()) {
    const std::uint32_t id =
        message.format == can::IdFormat::kExtended ? (message.id | 0x80000000u) : message.id;
    out << "BO_ " << id << ' ' << message.name << ": " << static_cast<unsigned>(message.dlc)
        << ' ' << (message.sender.empty() ? "Vector__XXX" : message.sender) << '\n';
    for (const auto& sig : message.signals) {
      // Streamed, not snprintf'd into a fixed buffer: a long signal name or
      // unit must not silently truncate the line into unparseable output.
      out << " SG_ " << sig.name << " : " << sig.start_bit << '|' << sig.bit_length << '@'
          << (sig.byte_order == ByteOrder::kLittleEndian ? '1' : '0')
          << (sig.is_signed ? '-' : '+') << " (" << fmt_g(sig.scale) << ','
          << fmt_g(sig.offset) << ") [" << fmt_g(sig.min) << '|' << fmt_g(sig.max) << "] \""
          << sig.unit << "\" Vector__XXX\n";
    }
    out << '\n';
  }
  for (const auto& message : database.messages()) {
    if (message.cycle_time_ms != 0) {
      out << "BA_ \"GenMsgCycleTime\" BO_ " << message.id << ' ' << message.cycle_time_ms
          << ";\n";
    }
  }
  return out.str();
}

}  // namespace acf::dbc
