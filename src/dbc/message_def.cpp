#include "dbc/message_def.hpp"

#include <vector>

namespace acf::dbc {

const SignalDef* MessageDef::signal(std::string_view sig_name) const noexcept {
  for (const auto& sig : signals) {
    if (sig.name == sig_name) return &sig;
  }
  return nullptr;
}

bool MessageDef::dlc_matches(const can::CanFrame& frame) const noexcept {
  return !frame.is_remote() && frame.dlc() == dlc;
}

std::optional<can::CanFrame> MessageDef::encode(
    const std::map<std::string, double>& values) const {
  std::vector<std::uint8_t> payload(dlc, 0);
  for (const auto& [sig_name, value] : values) {
    const SignalDef* sig = signal(sig_name);
    if (sig == nullptr) return std::nullopt;
    if (!dbc::encode(*sig, value, payload)) return std::nullopt;
  }
  return can::CanFrame::data(id, payload, format);
}

std::map<std::string, double> MessageDef::decode(const can::CanFrame& frame) const {
  std::map<std::string, double> out;
  for (const auto& sig : signals) {
    if (const auto value = dbc::decode(sig, frame.payload())) {
      out.emplace(sig.name, *value);
    }
  }
  return out;
}

}  // namespace acf::dbc
