// Signal packing/unpacking as defined by the DBC format used across the
// automotive industry: a signal is a bit slice of a CAN payload with byte
// order, signedness and a linear raw->physical mapping.
//
// The instrument cluster decoding a fuzzed frame through these definitions
// is what produces the paper's Fig. 8 "negative RPM" observable: random raw
// bits decode to physically implausible (but structurally valid) values.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace acf::dbc {

enum class ByteOrder : std::uint8_t {
  kLittleEndian,  // Intel, DBC "@1"
  kBigEndian,     // Motorola, DBC "@0"
};

struct SignalDef {
  std::string name;
  /// DBC start bit: for little-endian the LSB position; for big-endian the
  /// MSB position (bits within a byte numbered 7..0).
  std::uint16_t start_bit = 0;
  std::uint16_t bit_length = 1;  // 1..64
  ByteOrder byte_order = ByteOrder::kLittleEndian;
  bool is_signed = false;
  double scale = 1.0;
  double offset = 0.0;
  double min = 0.0;  // min==max==0 means "no declared range"
  double max = 0.0;
  std::string unit;

  /// Raw (on-wire integer) -> physical value.
  double raw_to_physical(std::uint64_t raw) const noexcept;
  /// Physical -> raw, clamped to the representable raw range.
  std::uint64_t physical_to_raw(double physical) const noexcept;

  /// True if the signal fits entirely inside a payload of `payload_bytes`.
  bool fits(std::size_t payload_bytes) const noexcept;

  /// True if `physical` lies inside the declared [min,max] (always true when
  /// no range is declared).  The plausibility oracle uses this.
  bool in_declared_range(double physical) const noexcept;
};

/// Extracts the raw value of `sig` from `payload`.  Returns nullopt if the
/// signal does not fit the payload.
std::optional<std::uint64_t> extract_raw(const SignalDef& sig,
                                         std::span<const std::uint8_t> payload) noexcept;

/// Inserts `raw` (truncated to bit_length) into `payload` in place.
/// Returns false if the signal does not fit.
bool insert_raw(const SignalDef& sig, std::uint64_t raw,
                std::span<std::uint8_t> payload) noexcept;

/// extract + sign-extension + linear map.
std::optional<double> decode(const SignalDef& sig,
                             std::span<const std::uint8_t> payload) noexcept;

/// Linear map + insert.
bool encode(const SignalDef& sig, double physical, std::span<std::uint8_t> payload) noexcept;

/// Sign-extends a `bits`-wide raw value into int64.
std::int64_t sign_extend(std::uint64_t raw, std::uint16_t bits) noexcept;

}  // namespace acf::dbc
