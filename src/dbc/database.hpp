// A signal database: the set of message definitions for one vehicle network.
// This is the "design knowledge" input the paper contrasts with protocol-
// only fuzzing (Table I): the targeted generator and the plausibility oracle
// both consume it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbc/message_def.hpp"

namespace acf::dbc {

class Database {
 public:
  Database() = default;

  /// Adds a message definition; replaces any existing one with the same id.
  void add(MessageDef message);

  const MessageDef* by_id(std::uint32_t id) const noexcept;
  const MessageDef* by_name(std::string_view name) const noexcept;

  const std::vector<MessageDef>& messages() const noexcept { return messages_; }
  std::size_t size() const noexcept { return messages_.size(); }

  /// All defined ids, ascending (used to derive targeted fuzz id sets).
  std::vector<std::uint32_t> ids() const;

 private:
  std::vector<MessageDef> messages_;
  std::unordered_map<std::uint32_t, std::size_t> by_id_;
};

}  // namespace acf::dbc
