// Minimal parser for the industry-standard DBC text format, covering the
// subset the framework needs: node list (BU_), messages (BO_), signals
// (SG_), and the GenMsgCycleTime attribute (BA_).  Everything else is
// skipped, never fatal — real DBC exports carry plenty of vendor noise.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dbc/database.hpp"

namespace acf::dbc {

struct ParseResult {
  Database database;
  std::vector<std::string> nodes;   // from BU_
  std::vector<std::string> errors;  // "line N: message" diagnostics

  bool ok() const noexcept { return errors.empty(); }
};

/// Parses DBC text.  Malformed lines produce diagnostics and are skipped;
/// well-formed content around them still loads.
ParseResult parse_dbc(std::string_view text);

/// Serialises a database back to DBC text (round-trips through parse_dbc).
std::string to_dbc_text(const Database& database, std::span<const std::string> nodes = {});

}  // namespace acf::dbc
