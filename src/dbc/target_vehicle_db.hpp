// The simulated target vehicle's signal database.
//
// The paper could not publish its target vehicle's proprietary message map
// (operational details of a vehicle's internals are commercial secrets); we
// define an equivalent one whose idle traffic resembles the captures shown
// in Table II (ids 0x215, 0x296, 0x43A, 0x4B0, 0x4F2 with the same DLCs).
// All ECU models, the targeted fuzzer and the plausibility oracle share
// these definitions.
#pragma once

#include <cstdint>

#include "dbc/database.hpp"

namespace acf::dbc {

// Message ids (11-bit).  Powertrain bus unless noted.
inline constexpr std::uint32_t kMsgEngineData = 0x0A5;        // 10 ms
inline constexpr std::uint32_t kMsgVehicleSpeed = 0x296;      // 20 ms
inline constexpr std::uint32_t kMsgWheelSpeeds = 0x4B0;       // 20 ms
inline constexpr std::uint32_t kMsgPowertrainStatus = 0x43A;  // 100 ms
inline constexpr std::uint32_t kMsgClusterDisplay = 0x4F2;    // 100 ms
inline constexpr std::uint32_t kMsgTelltales = 0x420;         // 100 ms
inline constexpr std::uint32_t kMsgBodyCommand = 0x215;       // event (body bus)
inline constexpr std::uint32_t kMsgBodyAck = 0x216;           // event (body bus)
inline constexpr std::uint32_t kMsgDoorStatus = 0x21A;        // 100 ms (body bus)

// UDS diagnostic addressing (physical request/response pairs).
inline constexpr std::uint32_t kUdsEngineRequest = 0x7E0;
inline constexpr std::uint32_t kUdsEngineResponse = 0x7E8;
inline constexpr std::uint32_t kUdsClusterRequest = 0x726;
inline constexpr std::uint32_t kUdsClusterResponse = 0x72E;
inline constexpr std::uint32_t kUdsBcmRequest = 0x740;
inline constexpr std::uint32_t kUdsBcmResponse = 0x748;

// BODY_COMMAND command codes (byte 0), as in the paper's lock/unlock app
// (Fig. 13: byte0 = 16 decimal for lock, 32 decimal for unlock, DLC 7).
inline constexpr std::uint8_t kCmdLock = 0x10;
inline constexpr std::uint8_t kCmdUnlock = 0x20;

/// Builds the target vehicle's database (fresh copy).
Database target_vehicle_database();

/// The same database as DBC text (exercises the parser; examples load it).
std::string target_vehicle_dbc_text();

}  // namespace acf::dbc
