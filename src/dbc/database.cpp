#include "dbc/database.hpp"

#include <algorithm>

namespace acf::dbc {

void Database::add(MessageDef message) {
  if (auto it = by_id_.find(message.id); it != by_id_.end()) {
    messages_[it->second] = std::move(message);
    return;
  }
  by_id_.emplace(message.id, messages_.size());
  messages_.push_back(std::move(message));
}

const MessageDef* Database::by_id(std::uint32_t id) const noexcept {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &messages_[it->second];
}

const MessageDef* Database::by_name(std::string_view name) const noexcept {
  for (const auto& message : messages_) {
    if (message.name == name) return &message;
  }
  return nullptr;
}

std::vector<std::uint32_t> Database::ids() const {
  std::vector<std::uint32_t> out;
  out.reserve(messages_.size());
  for (const auto& message : messages_) out.push_back(message.id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace acf::dbc
