#include "dbc/signal.hpp"

#include <algorithm>
#include <cmath>

namespace acf::dbc {

namespace {

/// Successive bit positions of a signal in payload order.  Little-endian
/// walks upward from start_bit (LSB first); big-endian starts at the MSB and
/// walks down within each byte, then to bit 7 of the next byte.
/// Returns byte*8+bit "absolute" positions, LSB-first for LE and MSB-first
/// for BE.
struct BitWalker {
  const SignalDef& sig;

  /// Absolute bit position (byte*8 + bit_in_byte, bit_in_byte LSB=0) of the
  /// i-th signal bit, where i=0 is the raw LSB for LE and the raw MSB for BE.
  std::size_t position(std::uint16_t i) const noexcept {
    if (sig.byte_order == ByteOrder::kLittleEndian) {
      return static_cast<std::size_t>(sig.start_bit) + i;
    }
    // Big-endian: start_bit is the MSB.  Walk "forward" on the wire.
    std::size_t byte = sig.start_bit / 8;
    std::size_t bit = sig.start_bit % 8;  // 0..7, LSB=0
    for (std::uint16_t step = 0; step < i; ++step) {
      if (bit == 0) {
        ++byte;
        bit = 7;
      } else {
        --bit;
      }
    }
    return byte * 8 + bit;
  }

  std::size_t last_byte() const noexcept {
    std::size_t max_byte = 0;
    for (std::uint16_t i = 0; i < sig.bit_length; ++i) {
      max_byte = std::max(max_byte, position(i) / 8);
    }
    return max_byte;
  }
};

}  // namespace

double SignalDef::raw_to_physical(std::uint64_t raw) const noexcept {
  const double base = is_signed ? static_cast<double>(sign_extend(raw, bit_length))
                                : static_cast<double>(raw);
  return base * scale + offset;
}

std::uint64_t SignalDef::physical_to_raw(double physical) const noexcept {
  const double unscaled = scale != 0.0 ? (physical - offset) / scale : 0.0;
  const double rounded = std::nearbyint(unscaled);
  const std::uint64_t mask =
      bit_length >= 64 ? ~0ULL : ((1ULL << bit_length) - 1);
  if (is_signed) {
    const double lo = -std::ldexp(1.0, bit_length - 1);
    const double hi = std::ldexp(1.0, bit_length - 1) - 1;
    const auto value = static_cast<std::int64_t>(std::clamp(rounded, lo, hi));
    return static_cast<std::uint64_t>(value) & mask;
  }
  const double hi = std::ldexp(1.0, bit_length) - 1;
  const auto value = static_cast<std::uint64_t>(std::clamp(rounded, 0.0, hi));
  return value & mask;
}

bool SignalDef::fits(std::size_t payload_bytes) const noexcept {
  if (bit_length == 0 || bit_length > 64) return false;
  const BitWalker walker{*this};
  if (byte_order == ByteOrder::kLittleEndian) {
    return static_cast<std::size_t>(start_bit) + bit_length <= payload_bytes * 8;
  }
  return walker.last_byte() < payload_bytes;
}

bool SignalDef::in_declared_range(double physical) const noexcept {
  if (min == 0.0 && max == 0.0) return true;
  return physical >= min && physical <= max;
}

std::optional<std::uint64_t> extract_raw(const SignalDef& sig,
                                         std::span<const std::uint8_t> payload) noexcept {
  if (!sig.fits(payload.size())) return std::nullopt;
  const BitWalker walker{sig};
  std::uint64_t raw = 0;
  if (sig.byte_order == ByteOrder::kLittleEndian) {
    for (std::uint16_t i = 0; i < sig.bit_length; ++i) {
      const std::size_t pos = walker.position(i);
      const std::uint64_t bit =
          static_cast<std::uint64_t>(payload[pos / 8] >> (pos % 8)) & 1u;
      raw |= bit << i;
    }
  } else {
    for (std::uint16_t i = 0; i < sig.bit_length; ++i) {
      const std::size_t pos = walker.position(i);
      const std::uint64_t bit =
          static_cast<std::uint64_t>(payload[pos / 8] >> (pos % 8)) & 1u;
      raw = (raw << 1) | bit;  // i=0 is the MSB
    }
  }
  return raw;
}

bool insert_raw(const SignalDef& sig, std::uint64_t raw,
                std::span<std::uint8_t> payload) noexcept {
  if (!sig.fits(payload.size())) return false;
  const BitWalker walker{sig};
  for (std::uint16_t i = 0; i < sig.bit_length; ++i) {
    const std::size_t pos = walker.position(i);
    const std::uint16_t source_bit =
        sig.byte_order == ByteOrder::kLittleEndian
            ? i
            : static_cast<std::uint16_t>(sig.bit_length - 1 - i);
    const std::uint8_t bit = static_cast<std::uint8_t>((raw >> source_bit) & 1u);
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (pos % 8));
    if (bit != 0) {
      payload[pos / 8] = static_cast<std::uint8_t>(payload[pos / 8] | mask);
    } else {
      payload[pos / 8] = static_cast<std::uint8_t>(payload[pos / 8] & ~mask);
    }
  }
  return true;
}

std::optional<double> decode(const SignalDef& sig,
                             std::span<const std::uint8_t> payload) noexcept {
  const auto raw = extract_raw(sig, payload);
  if (!raw) return std::nullopt;
  return sig.raw_to_physical(*raw);
}

bool encode(const SignalDef& sig, double physical, std::span<std::uint8_t> payload) noexcept {
  return insert_raw(sig, sig.physical_to_raw(physical), payload);
}

std::int64_t sign_extend(std::uint64_t raw, std::uint16_t bits) noexcept {
  if (bits == 0 || bits >= 64) return static_cast<std::int64_t>(raw);
  const std::uint64_t sign = 1ULL << (bits - 1);
  const std::uint64_t mask = (1ULL << bits) - 1;
  raw &= mask;
  if (raw & sign) raw |= ~mask;
  return static_cast<std::int64_t>(raw);
}

}  // namespace acf::dbc
