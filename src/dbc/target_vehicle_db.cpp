#include "dbc/target_vehicle_db.hpp"

#include "dbc/parser.hpp"

namespace acf::dbc {

namespace {

SignalDef sig(std::string name, std::uint16_t start, std::uint16_t length, double scale = 1.0,
              double offset = 0.0, bool is_signed = false, double min = 0.0, double max = 0.0,
              std::string unit = "") {
  SignalDef s;
  s.name = std::move(name);
  s.start_bit = start;
  s.bit_length = length;
  s.byte_order = ByteOrder::kLittleEndian;
  s.is_signed = is_signed;
  s.scale = scale;
  s.offset = offset;
  s.min = min;
  s.max = max;
  s.unit = std::move(unit);
  return s;
}

}  // namespace

Database target_vehicle_database() {
  Database db;

  {
    MessageDef m;
    m.id = kMsgEngineData;
    m.name = "ENGINE_DATA";
    m.dlc = 8;
    m.sender = "ECM";
    m.cycle_time_ms = 10;
    // RPM is signed on purpose: several production gauges treat the raw
    // field as two's complement, which is exactly what lets a fuzzed frame
    // display a negative RPM (paper Fig. 8).
    m.signals.push_back(sig("EngineRPM", 0, 16, 0.25, 0.0, true, 0, 8000, "rpm"));
    m.signals.push_back(sig("ThrottlePct", 16, 8, 0.4, 0.0, false, 0, 100, "%"));
    m.signals.push_back(sig("CoolantTempC", 24, 8, 1.0, -40.0, false, -40, 215, "degC"));
    m.signals.push_back(sig("EngineRunning", 32, 1));
    m.signals.push_back(sig("FuelRate", 40, 16, 0.05, 0.0, false, 0, 3000, "mg/s"));
    db.add(std::move(m));
  }
  {
    MessageDef m;
    m.id = kMsgVehicleSpeed;
    m.name = "VEHICLE_SPEED";
    m.dlc = 8;
    m.sender = "ECM";
    m.cycle_time_ms = 20;
    m.signals.push_back(sig("SpeedKph", 0, 16, 0.01, 0.0, false, 0, 300, "km/h"));
    m.signals.push_back(sig("AccelPct", 16, 8, 0.4, 0.0, false, 0, 100, "%"));
    m.signals.push_back(sig("BrakeActive", 24, 1));
    m.signals.push_back(sig("GearPosition", 56, 4, 1.0, 0.0, false, 0, 8));
    m.signals.push_back(sig("SpeedValid", 61, 1));
    m.signals.push_back(sig("CruiseEngaged", 62, 1));
    db.add(std::move(m));
  }
  {
    MessageDef m;
    m.id = kMsgWheelSpeeds;
    m.name = "WHEEL_SPEEDS";
    m.dlc = 8;
    m.sender = "ABS";
    m.cycle_time_ms = 20;
    m.signals.push_back(sig("WheelFL", 0, 16, 0.01, 0.0, false, 0, 300, "km/h"));
    m.signals.push_back(sig("WheelFR", 16, 16, 0.01, 0.0, false, 0, 300, "km/h"));
    m.signals.push_back(sig("WheelRL", 32, 16, 0.01, 0.0, false, 0, 300, "km/h"));
    m.signals.push_back(sig("WheelRR", 48, 16, 0.01, 0.0, false, 0, 300, "km/h"));
    db.add(std::move(m));
  }
  {
    MessageDef m;
    m.id = kMsgPowertrainStatus;
    m.name = "POWERTRAIN_STATUS";
    m.dlc = 8;
    m.sender = "ECM";
    m.cycle_time_ms = 100;
    m.signals.push_back(sig("OilTempC", 0, 8, 1.0, -40.0, false, -40, 215, "degC"));
    m.signals.push_back(sig("OilPressureKpa", 8, 8, 4.0, 0.0, false, 0, 1000, "kPa"));
    m.signals.push_back(sig("IntakeTempC", 16, 8, 1.0, -40.0, false, -40, 215, "degC"));
    m.signals.push_back(sig("BatteryVolts", 24, 8, 0.1, 0.0, false, 0, 25.5, "V"));
    m.signals.push_back(sig("FuelLevelPct", 32, 8, 0.4, 0.0, false, 0, 100, "%"));
    m.signals.push_back(sig("AmbientTempC", 40, 8, 1.0, -40.0, false, -40, 215, "degC"));
    // Bytes 6..7 are reserved and transmitted as 0xFF by the ECM (matching
    // the "FF FF" tail visible in the paper's Table II capture of 0x43A).
    m.signals.push_back(sig("Reserved", 48, 16, 1.0, 0.0, false, 0, 65535));
    db.add(std::move(m));
  }
  {
    MessageDef m;
    m.id = kMsgClusterDisplay;
    m.name = "CLUSTER_DISPLAY";
    m.dlc = 8;
    m.sender = "BCM";
    m.cycle_time_ms = 100;
    m.signals.push_back(sig("DisplayMode", 0, 8));
    m.signals.push_back(sig("DisplayArg", 8, 8));
    m.signals.push_back(sig("OdometerKm", 16, 24, 0.1, 0.0, false, 0, 1677721, "km"));
    m.signals.push_back(sig("TripKm", 40, 16, 0.1, 0.0, false, 0, 6553.5, "km"));
    db.add(std::move(m));
  }
  {
    MessageDef m;
    m.id = kMsgTelltales;
    m.name = "TELLTALES";
    m.dlc = 8;
    m.sender = "ECM";
    m.cycle_time_ms = 100;
    m.signals.push_back(sig("MilOn", 0, 1));
    m.signals.push_back(sig("OilWarning", 1, 1));
    m.signals.push_back(sig("BatteryWarning", 2, 1));
    m.signals.push_back(sig("CoolantWarning", 3, 1));
    m.signals.push_back(sig("AbsWarning", 4, 1));
    m.signals.push_back(sig("AirbagWarning", 5, 1));
    m.signals.push_back(sig("DtcCount", 8, 8, 1.0, 0.0, false, 0, 255));
    db.add(std::move(m));
  }
  {
    MessageDef m;
    m.id = kMsgBodyCommand;
    m.name = "BODY_COMMAND";
    m.dlc = 7;  // the paper's lock/unlock app transmits DLC 7 on id 0x215
    m.sender = "IVI";
    m.cycle_time_ms = 0;  // event-driven
    m.signals.push_back(sig("Command", 0, 8));
    m.signals.push_back(sig("Source", 8, 8));
    m.signals.push_back(sig("SessionId", 16, 16));
    m.signals.push_back(sig("SequenceNum", 32, 8));
    db.add(std::move(m));
  }
  {
    MessageDef m;
    m.id = kMsgBodyAck;
    m.name = "BODY_ACK";
    m.dlc = 2;
    m.sender = "BCM";
    m.cycle_time_ms = 0;
    m.signals.push_back(sig("AckCommand", 0, 8));
    m.signals.push_back(sig("AckResult", 8, 8));
    db.add(std::move(m));
  }
  {
    MessageDef m;
    m.id = kMsgDoorStatus;
    m.name = "DOOR_STATUS";
    m.dlc = 4;
    m.sender = "BCM";
    m.cycle_time_ms = 100;
    m.signals.push_back(sig("LockState", 0, 1));  // 0 locked, 1 unlocked
    m.signals.push_back(sig("DriverDoorOpen", 1, 1));
    m.signals.push_back(sig("PassengerDoorOpen", 2, 1));
    m.signals.push_back(sig("InteriorLight", 8, 1));
    db.add(std::move(m));
  }
  return db;
}

std::string target_vehicle_dbc_text() {
  const Database db = target_vehicle_database();
  const std::string nodes[] = {"ECM", "ABS", "BCM", "IVI", "CLUSTER", "GATEWAY"};
  return to_dbc_text(db, nodes);
}

}  // namespace acf::dbc
