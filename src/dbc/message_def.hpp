// Message definitions: a CAN id, DLC and the signals packed into it, plus
// the transmit schedule (cycle time) used by ECU models.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "can/frame.hpp"
#include "dbc/signal.hpp"

namespace acf::dbc {

struct MessageDef {
  std::uint32_t id = 0;
  can::IdFormat format = can::IdFormat::kStandard;
  std::string name;
  std::uint8_t dlc = 8;
  std::string sender;
  std::uint32_t cycle_time_ms = 0;  // 0 = event-driven
  std::vector<SignalDef> signals;

  const SignalDef* signal(std::string_view sig_name) const noexcept;

  /// True when `frame` carries exactly the declared DLC (remote frames never
  /// match — they carry no data).  This is THE implementation of the paper's
  /// Table V one-line hardening: the BCM's length-checking predicate and the
  /// ids::DlcConsistencyDetector both call it, so prevention and detection
  /// cannot drift apart.
  bool dlc_matches(const can::CanFrame& frame) const noexcept;

  /// Encodes a set of physical values into a frame.  Signals not present in
  /// `values` encode as raw zero.  Returns nullopt if any named signal is
  /// unknown or does not fit the DLC.
  std::optional<can::CanFrame> encode(const std::map<std::string, double>& values) const;

  /// Decodes every signal of the message from `frame`.  Signals that do not
  /// fit the actual payload are omitted (short frames happen under fuzzing).
  std::map<std::string, double> decode(const can::CanFrame& frame) const;
};

}  // namespace acf::dbc
