#include "uds/uds_client.hpp"

#include "uds/uds_server.hpp"

namespace acf::uds {

UdsClient::UdsClient(sim::Scheduler& scheduler, isotp::IsoTpChannel::SendFn send,
                     isotp::IsoTpConfig isotp_config)
    : channel_(scheduler, std::move(send), isotp_config) {
  channel_.set_on_message([this](const std::vector<std::uint8_t>& payload, sim::SimTime) {
    // Response-pending (0x78) keeps the wait alive; anything else completes.
    if (payload.size() >= 3 && payload[0] == kNegativeResponse && payload[2] == 0x78) return;
    response_ = UdsResponse{payload};
    awaiting_ = false;
    ++responses_;
  });
}

bool UdsClient::request(std::vector<std::uint8_t> payload) {
  response_.reset();
  if (!channel_.send(std::move(payload))) return false;
  awaiting_ = true;
  ++requests_;
  return true;
}

void UdsClient::handle_frame(const can::CanFrame& frame, sim::SimTime time) {
  channel_.handle_frame(frame, time);
}

bool UdsClient::start_session(std::uint8_t session) {
  return request({kSidDiagnosticSessionControl, session});
}

bool UdsClient::request_seed(std::uint8_t level) { return request({kSidSecurityAccess, level}); }

bool UdsClient::send_key(std::uint8_t level, const Key& key) {
  std::vector<std::uint8_t> payload = {kSidSecurityAccess,
                                       static_cast<std::uint8_t>(level + 1)};
  payload.insert(payload.end(), key.begin(), key.end());
  return request(std::move(payload));
}

bool UdsClient::read_did(std::uint16_t did) {
  return request({kSidReadDataByIdentifier, static_cast<std::uint8_t>(did >> 8),
                  static_cast<std::uint8_t>(did & 0xFF)});
}

bool UdsClient::write_did(std::uint16_t did, std::span<const std::uint8_t> value) {
  std::vector<std::uint8_t> payload = {kSidWriteDataByIdentifier,
                                       static_cast<std::uint8_t>(did >> 8),
                                       static_cast<std::uint8_t>(did & 0xFF)};
  payload.insert(payload.end(), value.begin(), value.end());
  return request(std::move(payload));
}

bool UdsClient::tester_present() { return request({kSidTesterPresent, 0x00}); }

bool UdsClient::ecu_reset(std::uint8_t type) { return request({kSidEcuReset, type}); }

std::optional<Seed> UdsClient::seed_from_response(const UdsResponse& response) {
  if (!response.positive() || response.payload.size() < 6 ||
      response.payload[0] != kSidSecurityAccess + 0x40) {
    return std::nullopt;
  }
  Seed seed{};
  for (std::size_t i = 0; i < seed.size(); ++i) seed[i] = response.payload[2 + i];
  return seed;
}

}  // namespace acf::uds
