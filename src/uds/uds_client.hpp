// UDS tester/client: drives a UDS server over ISO-TP.  Used by the UDS
// discovery example and the security-access property tests, and as the
// legitimate counterpart the UDS fuzzer is compared against.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "isotp/isotp.hpp"
#include "sim/scheduler.hpp"
#include "uds/security.hpp"

namespace acf::uds {

struct UdsResponse {
  std::vector<std::uint8_t> payload;  // full response including SID byte
  bool positive() const noexcept {
    return !payload.empty() && payload[0] != 0x7F;
  }
  std::optional<std::uint8_t> nrc() const noexcept {
    if (payload.size() >= 3 && payload[0] == 0x7F) return payload[2];
    return std::nullopt;
  }
};

class UdsClient {
 public:
  /// The client owns an ISO-TP channel built on `send`; feed incoming frames
  /// through handle_frame().
  UdsClient(sim::Scheduler& scheduler, isotp::IsoTpChannel::SendFn send,
            isotp::IsoTpConfig isotp_config);

  /// Sends a raw request.  The last completed response is retained.
  bool request(std::vector<std::uint8_t> payload);
  void handle_frame(const can::CanFrame& frame, sim::SimTime time);

  /// Most recent response, cleared by the next request().
  const std::optional<UdsResponse>& last_response() const noexcept { return response_; }
  bool awaiting_response() const noexcept { return awaiting_; }

  /// Convenience wrappers (send only; poll last_response afterwards).
  bool start_session(std::uint8_t session);
  bool request_seed(std::uint8_t level = 0x01);
  bool send_key(std::uint8_t level, const Key& key);
  bool read_did(std::uint16_t did);
  bool write_did(std::uint16_t did, std::span<const std::uint8_t> value);
  bool tester_present();
  bool ecu_reset(std::uint8_t type = 0x01);

  /// Extracts the 4-byte seed from a positive 0x67 response.
  static std::optional<Seed> seed_from_response(const UdsResponse& response);

  std::uint64_t requests_sent() const noexcept { return requests_; }
  std::uint64_t responses_received() const noexcept { return responses_; }

 private:
  isotp::IsoTpChannel channel_;
  std::optional<UdsResponse> response_;
  bool awaiting_ = false;
  std::uint64_t requests_ = 0;
  std::uint64_t responses_ = 0;
};

}  // namespace acf::uds
