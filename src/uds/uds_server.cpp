#include "uds/uds_server.hpp"

namespace acf::uds {

UdsServer::UdsServer(sim::Scheduler& scheduler, UdsServerConfig config,
                     std::unique_ptr<SeedKeyAlgorithm> algorithm)
    : scheduler_(scheduler), config_(config),
      algorithm_(algorithm ? std::move(algorithm) : std::make_unique<XorRotateAlgorithm>()),
      rng_(config.seed_rng) {}

void UdsServer::handle_request(std::span<const std::uint8_t> request,
                               const SendResponseFn& respond) {
  ++stats_.requests;
  if (request.empty()) return;
  std::vector<std::uint8_t> response = dispatch(request);
  if (response.empty()) return;  // suppressed (e.g. TesterPresent 0x80 bit)
  if (response[0] == kNegativeResponse) {
    ++stats_.negative_responses;
  } else {
    ++stats_.positive_responses;
  }
  respond(std::move(response));
}

std::vector<std::uint8_t> UdsServer::dispatch(std::span<const std::uint8_t> request) {
  const std::uint8_t sid = request[0];
  // SIDs 0x01..0x0F are legacy OBD-II modes handled by a J1979 stack that
  // may share the diagnostic id pair; stay silent so the two stacks never
  // both answer one request.
  if (sid <= 0x0F) return {};
  touch_s3_timer();
  switch (sid) {
    case kSidDiagnosticSessionControl: return handle_session_control(request);
    case kSidEcuReset: return handle_ecu_reset(request);
    case kSidReadDataByIdentifier: return handle_read_did(request);
    case kSidWriteDataByIdentifier: return handle_write_did(request);
    case kSidSecurityAccess: return handle_security_access(request);
    case kSidTesterPresent: return handle_tester_present(request);
    case kSidReadDtcInformation: return handle_read_dtc(request);
    default: return negative(sid, kNrcServiceNotSupported);
  }
}

std::vector<std::uint8_t> UdsServer::negative(std::uint8_t sid, std::uint8_t nrc) {
  return {kNegativeResponse, sid, nrc};
}

std::vector<std::uint8_t> UdsServer::handle_session_control(
    std::span<const std::uint8_t> request) {
  if (request.size() != 2) return negative(request[0], kNrcIncorrectLength);
  const std::uint8_t sub = request[1] & 0x7F;
  if (sub != static_cast<std::uint8_t>(Session::kDefault) &&
      sub != static_cast<std::uint8_t>(Session::kProgramming) &&
      sub != static_cast<std::uint8_t>(Session::kExtended)) {
    return negative(request[0], kNrcSubFunctionNotSupported);
  }
  session_ = static_cast<Session>(sub);
  if (session_ == Session::kDefault) {
    security_ = SecurityState::kLocked;  // leaving diag session relocks
    failed_attempts_ = 0;
  }
  touch_s3_timer();
  // Positive response carries the P2/P2* timing parameters (representative
  // constants: 50 ms / 5000 ms).
  return {static_cast<std::uint8_t>(request[0] + 0x40), request[1], 0x00, 0x32, 0x01, 0xF4};
}

std::vector<std::uint8_t> UdsServer::handle_ecu_reset(std::span<const std::uint8_t> request) {
  if (request.size() != 2) return negative(request[0], kNrcIncorrectLength);
  const std::uint8_t sub = request[1] & 0x7F;
  if (sub != 0x01 && sub != 0x02 && sub != 0x03) {
    return negative(request[0], kNrcSubFunctionNotSupported);
  }
  ++stats_.resets;
  reset_state();
  if (reset_handler_) reset_handler_();
  return {static_cast<std::uint8_t>(request[0] + 0x40), request[1]};
}

std::vector<std::uint8_t> UdsServer::handle_read_did(std::span<const std::uint8_t> request) {
  if (request.size() != 3) return negative(request[0], kNrcIncorrectLength);
  const std::uint16_t did = static_cast<std::uint16_t>((request[1] << 8) | request[2]);
  const auto it = dids_.find(did);
  if (it == dids_.end()) return negative(request[0], kNrcRequestOutOfRange);
  std::vector<std::uint8_t> response = {static_cast<std::uint8_t>(request[0] + 0x40),
                                        request[1], request[2]};
  response.insert(response.end(), it->second.value.begin(), it->second.value.end());
  return response;
}

std::vector<std::uint8_t> UdsServer::handle_write_did(std::span<const std::uint8_t> request) {
  if (request.size() < 4) return negative(request[0], kNrcIncorrectLength);
  const std::uint16_t did = static_cast<std::uint16_t>((request[1] << 8) | request[2]);
  const auto it = dids_.find(did);
  if (it == dids_.end() || !it->second.writable) {
    return negative(request[0], kNrcRequestOutOfRange);
  }
  if (session_ == Session::kDefault) return negative(request[0], kNrcConditionsNotCorrect);
  if (it->second.write_needs_unlock && security_ != SecurityState::kUnlocked) {
    return negative(request[0], kNrcSecurityAccessDenied);
  }
  it->second.value.assign(request.begin() + 3, request.end());
  return {static_cast<std::uint8_t>(request[0] + 0x40), request[1], request[2]};
}

std::vector<std::uint8_t> UdsServer::handle_security_access(
    std::span<const std::uint8_t> request) {
  if (request.size() < 2) return negative(request[0], kNrcIncorrectLength);
  if (session_ == Session::kDefault) return negative(request[0], kNrcConditionsNotCorrect);
  const std::uint8_t sub = request[1] & 0x7F;
  const std::uint8_t seed_sub = config_.security_level;
  const std::uint8_t key_sub = static_cast<std::uint8_t>(config_.security_level + 1);

  if (sub == seed_sub) {
    if (request.size() != 2) return negative(request[0], kNrcIncorrectLength);
    if (scheduler_.now() < lockout_until_) {
      return negative(request[0], kNrcTimeDelayNotExpired);
    }
    if (security_ == SecurityState::kUnlocked) {
      // Already unlocked: spec says return an all-zero seed.
      return {static_cast<std::uint8_t>(request[0] + 0x40), request[1], 0, 0, 0, 0};
    }
    for (auto& byte : pending_seed_) byte = rng_.next_byte();
    security_ = SecurityState::kSeedIssued;
    std::vector<std::uint8_t> response = {static_cast<std::uint8_t>(request[0] + 0x40),
                                          request[1]};
    response.insert(response.end(), pending_seed_.begin(), pending_seed_.end());
    return response;
  }
  if (sub == key_sub) {
    if (security_ != SecurityState::kSeedIssued) {
      return negative(request[0], kNrcRequestSequenceError);
    }
    if (request.size() != 2 + pending_seed_.size()) {
      return negative(request[0], kNrcIncorrectLength);
    }
    if (verify_key(*algorithm_, pending_seed_, request.subspan(2))) {
      security_ = SecurityState::kUnlocked;
      failed_attempts_ = 0;
      ++stats_.unlocks;
      return {static_cast<std::uint8_t>(request[0] + 0x40), request[1]};
    }
    ++stats_.failed_key_attempts;
    security_ = SecurityState::kLocked;
    if (++failed_attempts_ >= config_.max_key_attempts) {
      failed_attempts_ = 0;
      lockout_until_ = scheduler_.now() + config_.lockout_delay;
      return negative(request[0], kNrcExceededAttempts);
    }
    return negative(request[0], kNrcInvalidKey);
  }
  return negative(request[0], kNrcSubFunctionNotSupported);
}

std::vector<std::uint8_t> UdsServer::handle_tester_present(
    std::span<const std::uint8_t> request) {
  if (request.size() != 2) return negative(request[0], kNrcIncorrectLength);
  touch_s3_timer();
  if ((request[1] & 0x80) != 0) return {};  // suppressPosRspMsgIndication
  return {static_cast<std::uint8_t>(request[0] + 0x40), request[1]};
}

std::vector<std::uint8_t> UdsServer::handle_read_dtc(std::span<const std::uint8_t> request) {
  if (request.size() < 2) return negative(request[0], kNrcIncorrectLength);
  const std::uint8_t sub = request[1];
  if (sub != 0x02) return negative(request[0], kNrcSubFunctionNotSupported);
  std::vector<std::uint8_t> response = {static_cast<std::uint8_t>(request[0] + 0x40), sub,
                                        0xFF};  // availability mask
  if (dtc_provider_) {
    const auto dtcs = dtc_provider_();
    response.insert(response.end(), dtcs.begin(), dtcs.end());
  }
  return response;
}

void UdsServer::set_did(std::uint16_t did, std::vector<std::uint8_t> value, bool writable,
                        bool write_needs_unlock) {
  dids_[did] = DidEntry{std::move(value), writable, write_needs_unlock};
}

const std::vector<std::uint8_t>* UdsServer::did_value(std::uint16_t did) const {
  const auto it = dids_.find(did);
  return it == dids_.end() ? nullptr : &it->second.value;
}

void UdsServer::reset_state() {
  session_ = Session::kDefault;
  security_ = SecurityState::kLocked;
  failed_attempts_ = 0;
  scheduler_.cancel(s3_timer_);
  s3_timer_ = {};
}

void UdsServer::touch_s3_timer() {
  scheduler_.cancel(s3_timer_);
  if (session_ == Session::kDefault) return;
  s3_timer_ = scheduler_.schedule_after(config_.s3_timeout, [this] {
    session_ = Session::kDefault;
    security_ = SecurityState::kLocked;
  });
}

}  // namespace acf::uds
