// UDS (ISO 14229) diagnostic server: the service endpoint every real ECU
// exposes over ISO-TP.  Covers the subset relevant to security testing:
// session control, ECU reset, security access with lockout, data identifier
// read/write, tester present and DTC reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "isotp/isotp.hpp"
#include "sim/scheduler.hpp"
#include "uds/security.hpp"
#include "util/rng.hpp"

namespace acf::uds {

// Service ids.
inline constexpr std::uint8_t kSidDiagnosticSessionControl = 0x10;
inline constexpr std::uint8_t kSidEcuReset = 0x11;
inline constexpr std::uint8_t kSidReadDtcInformation = 0x19;
inline constexpr std::uint8_t kSidReadDataByIdentifier = 0x22;
inline constexpr std::uint8_t kSidSecurityAccess = 0x27;
inline constexpr std::uint8_t kSidWriteDataByIdentifier = 0x2E;
inline constexpr std::uint8_t kSidTesterPresent = 0x3E;
inline constexpr std::uint8_t kNegativeResponse = 0x7F;

// Negative response codes.
inline constexpr std::uint8_t kNrcServiceNotSupported = 0x11;
inline constexpr std::uint8_t kNrcSubFunctionNotSupported = 0x12;
inline constexpr std::uint8_t kNrcIncorrectLength = 0x13;
inline constexpr std::uint8_t kNrcConditionsNotCorrect = 0x22;
inline constexpr std::uint8_t kNrcRequestSequenceError = 0x24;
inline constexpr std::uint8_t kNrcRequestOutOfRange = 0x31;
inline constexpr std::uint8_t kNrcSecurityAccessDenied = 0x33;
inline constexpr std::uint8_t kNrcInvalidKey = 0x35;
inline constexpr std::uint8_t kNrcExceededAttempts = 0x36;
inline constexpr std::uint8_t kNrcTimeDelayNotExpired = 0x37;

enum class Session : std::uint8_t {
  kDefault = 0x01,
  kProgramming = 0x02,
  kExtended = 0x03,
};

/// The paper's "ECU operating modes": normal operation vs unlocked for
/// service/update.
enum class SecurityState : std::uint8_t { kLocked, kSeedIssued, kUnlocked };

struct UdsServerConfig {
  /// Security level (odd sub-function value for requestSeed).
  std::uint8_t security_level = 0x01;
  std::uint8_t max_key_attempts = 3;
  /// Penalty delay after exhausting attempts before a new seed is issued.
  sim::Duration lockout_delay{std::chrono::seconds(10)};
  /// S3: inactivity timeout that drops a non-default session (and relocks).
  sim::Duration s3_timeout{std::chrono::seconds(5)};
  std::uint64_t seed_rng = 0x5eedULL;
};

struct UdsServerStats {
  std::uint64_t requests = 0;
  std::uint64_t positive_responses = 0;
  std::uint64_t negative_responses = 0;
  std::uint64_t resets = 0;
  std::uint64_t unlocks = 0;
  std::uint64_t failed_key_attempts = 0;
};

class UdsServer {
 public:
  using SendResponseFn = std::function<void(std::vector<std::uint8_t>)>;

  UdsServer(sim::Scheduler& scheduler, UdsServerConfig config,
            std::unique_ptr<SeedKeyAlgorithm> algorithm = nullptr);

  /// Handles one complete (ISO-TP reassembled) request; the response is
  /// delivered through `respond`.
  void handle_request(std::span<const std::uint8_t> request, const SendResponseFn& respond);

  // --- application integration -------------------------------------------
  /// Backing store for ReadDataByIdentifier / WriteDataByIdentifier.
  void set_did(std::uint16_t did, std::vector<std::uint8_t> value, bool writable = false,
               bool write_needs_unlock = true);
  const std::vector<std::uint8_t>* did_value(std::uint16_t did) const;

  /// Supplies DTC bytes for ReadDTCInformation (3 bytes + status per DTC).
  void set_dtc_provider(std::function<std::vector<std::uint8_t>()> provider) {
    dtc_provider_ = std::move(provider);
  }
  /// Invoked on a positive ECUReset.
  void set_reset_handler(std::function<void()> handler) { reset_handler_ = std::move(handler); }

  Session session() const noexcept { return session_; }
  SecurityState security_state() const noexcept { return security_; }
  const UdsServerStats& stats() const noexcept { return stats_; }

  /// Drops to the default session and relocks (power-on state).
  void reset_state();

 private:
  struct DidEntry {
    std::vector<std::uint8_t> value;
    bool writable = false;
    bool write_needs_unlock = true;
  };

  std::vector<std::uint8_t> dispatch(std::span<const std::uint8_t> request);
  std::vector<std::uint8_t> negative(std::uint8_t sid, std::uint8_t nrc);
  std::vector<std::uint8_t> handle_session_control(std::span<const std::uint8_t> request);
  std::vector<std::uint8_t> handle_ecu_reset(std::span<const std::uint8_t> request);
  std::vector<std::uint8_t> handle_read_did(std::span<const std::uint8_t> request);
  std::vector<std::uint8_t> handle_write_did(std::span<const std::uint8_t> request);
  std::vector<std::uint8_t> handle_security_access(std::span<const std::uint8_t> request);
  std::vector<std::uint8_t> handle_tester_present(std::span<const std::uint8_t> request);
  std::vector<std::uint8_t> handle_read_dtc(std::span<const std::uint8_t> request);
  void touch_s3_timer();

  sim::Scheduler& scheduler_;
  UdsServerConfig config_;
  std::unique_ptr<SeedKeyAlgorithm> algorithm_;
  util::Rng rng_;

  Session session_ = Session::kDefault;
  SecurityState security_ = SecurityState::kLocked;
  Seed pending_seed_{};
  std::uint8_t failed_attempts_ = 0;
  sim::SimTime lockout_until_{0};
  sim::EventId s3_timer_{};

  std::map<std::uint16_t, DidEntry> dids_;
  std::function<std::vector<std::uint8_t>()> dtc_provider_;
  std::function<void()> reset_handler_;
  UdsServerStats stats_;
};

}  // namespace acf::uds
