#include "uds/security.hpp"

#include <algorithm>
#include <bit>

namespace acf::uds {

Key XorRotateAlgorithm::compute_key(const Seed& seed) const {
  std::uint32_t value = 0;
  for (std::uint8_t byte : seed) value = (value << 8) | byte;
  value ^= secret_;
  value = std::rotl(value, 7);
  value = value * 0x01000193u + 0x811C9DC5u;  // FNV-style mix
  Key key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[key.size() - 1 - i] = static_cast<std::uint8_t>(value & 0xFF);
    value >>= 8;
  }
  return key;
}

bool verify_key(const SeedKeyAlgorithm& algorithm, const Seed& seed,
                std::span<const std::uint8_t> candidate) {
  const Key expected = algorithm.compute_key(seed);
  return candidate.size() == expected.size() &&
         std::equal(expected.begin(), expected.end(), candidate.begin());
}

}  // namespace acf::uds
