// SecurityAccess (UDS service 0x27) seed/key material.
//
// Real OEM algorithms are secret; what matters for the testing framework is
// the state machine around them (locked/unlocked ECU operating modes,
// invalid-key lockout, time penalties) — the paper highlights exactly these
// states as ones testers must cover.  The default algorithm here is a
// deliberately simple keyed transform.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace acf::uds {

using Seed = std::array<std::uint8_t, 4>;
using Key = std::array<std::uint8_t, 4>;

class SeedKeyAlgorithm {
 public:
  virtual ~SeedKeyAlgorithm() = default;
  virtual Key compute_key(const Seed& seed) const = 0;
};

/// Byte-wise xor with a rolling secret plus rotation — representative of the
/// (weak) algorithms found in legacy ECUs.
class XorRotateAlgorithm final : public SeedKeyAlgorithm {
 public:
  explicit XorRotateAlgorithm(std::uint32_t secret = 0x5A3C7E19) : secret_(secret) {}
  Key compute_key(const Seed& seed) const override;

 private:
  std::uint32_t secret_;
};

/// True if `candidate` matches the key for `seed` under `algorithm`.
bool verify_key(const SeedKeyAlgorithm& algorithm, const Seed& seed,
                std::span<const std::uint8_t> candidate);

}  // namespace acf::uds
