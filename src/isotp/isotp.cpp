#include "isotp/isotp.hpp"

#include <algorithm>

namespace acf::isotp {

namespace {
constexpr std::uint8_t kPciSingle = 0x0;
constexpr std::uint8_t kPciFirst = 0x1;
constexpr std::uint8_t kPciConsecutive = 0x2;
constexpr std::uint8_t kPciFlowControl = 0x3;

constexpr std::uint8_t kFlowContinue = 0x0;
constexpr std::uint8_t kFlowWait = 0x1;
constexpr std::uint8_t kFlowOverflow = 0x2;

// Pacing for STmin = 0 (~one padded frame time at 500 kb/s) and the retry
// delay when the local controller's transmit queue is full.
constexpr sim::Duration kZeroStMinPacing = std::chrono::microseconds(250);
constexpr sim::Duration kCfRetryDelay = std::chrono::microseconds(500);
}  // namespace

IsoTpChannel::IsoTpChannel(sim::Scheduler& scheduler, SendFn send, IsoTpConfig config)
    : scheduler_(scheduler), send_(std::move(send)), config_(config) {}

bool IsoTpChannel::send_raw(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> padded(bytes.begin(), bytes.end());
  if (config_.pad_frames && padded.size() < can::kMaxClassicPayload) {
    padded.resize(can::kMaxClassicPayload, config_.pad_byte);
  }
  const auto frame = can::CanFrame::data(config_.tx_id, padded);
  if (!frame) return false;
  if (!send_(*frame)) return false;
  ++stats_.frames_sent;
  return true;
}

bool IsoTpChannel::send(std::vector<std::uint8_t> payload) {
  if (tx_.state != TxState::kIdle || payload.size() > kMaxPayload) return false;
  if (payload.size() <= 7) {
    send_single(payload);
    ++stats_.messages_sent;
    if (on_tx_done_) on_tx_done_(true);
    return true;
  }
  tx_.payload = std::move(payload);
  tx_.offset = 0;
  tx_.sequence = 0;
  send_first_frame();
  return true;
}

void IsoTpChannel::send_single(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(payload.size() + 1);
  bytes.push_back(static_cast<std::uint8_t>((kPciSingle << 4) | payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  send_raw(bytes);
}

void IsoTpChannel::send_first_frame() {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(8);
  const auto len = tx_.payload.size();
  bytes.push_back(static_cast<std::uint8_t>((kPciFirst << 4) | ((len >> 8) & 0x0F)));
  bytes.push_back(static_cast<std::uint8_t>(len & 0xFF));
  const std::size_t chunk = std::min<std::size_t>(6, len);
  bytes.insert(bytes.end(), tx_.payload.begin(),
               tx_.payload.begin() + static_cast<std::ptrdiff_t>(chunk));
  tx_.offset = chunk;
  tx_.sequence = 0;
  tx_.fc_waits = 0;
  tx_.state = TxState::kAwaitingFlowControl;
  send_raw(bytes);
  arm_tx_timeout();
}

void IsoTpChannel::send_next_consecutive() {
  if (tx_.state != TxState::kSendingConsecutive) return;
  const auto next_seq = static_cast<std::uint8_t>((tx_.sequence + 1) & 0x0F);
  std::vector<std::uint8_t> bytes;
  bytes.reserve(8);
  bytes.push_back(static_cast<std::uint8_t>((kPciConsecutive << 4) | next_seq));
  const std::size_t remaining = tx_.payload.size() - tx_.offset;
  const std::size_t chunk = std::min<std::size_t>(7, remaining);
  bytes.insert(bytes.end(), tx_.payload.begin() + static_cast<std::ptrdiff_t>(tx_.offset),
               tx_.payload.begin() + static_cast<std::ptrdiff_t>(tx_.offset + chunk));
  if (!send_raw(bytes)) {
    // Controller mailbox full (busy bus): retry without consuming payload —
    // the peer sees an uninterrupted, correctly sequenced CF stream.
    tx_.timer =
        scheduler_.schedule_after(kCfRetryDelay, [this] { send_next_consecutive(); });
    return;
  }
  tx_.sequence = next_seq;
  tx_.offset += chunk;

  if (tx_.offset >= tx_.payload.size()) {
    finish_tx();
    return;
  }
  if (tx_.block_limited && --tx_.frames_until_fc == 0) {
    tx_.state = TxState::kAwaitingFlowControl;
    arm_tx_timeout();
    return;
  }
  // Zero STmin still paces at roughly one frame time so the transmit queue
  // cannot grow without bound on a shared bus.
  const sim::Duration gap = tx_.st_min_ms > 0
                                ? sim::Duration{std::chrono::milliseconds(tx_.st_min_ms)}
                                : kZeroStMinPacing;
  tx_.timer = scheduler_.schedule_after(gap, [this] { send_next_consecutive(); });
}

void IsoTpChannel::send_flow_control(std::uint8_t flow_status) {
  const std::uint8_t bytes[3] = {
      static_cast<std::uint8_t>((kPciFlowControl << 4) | flow_status), config_.block_size,
      config_.st_min_ms};
  send_raw(bytes);
}

void IsoTpChannel::handle_frame(const can::CanFrame& frame, sim::SimTime time) {
  if (frame.id() != config_.rx_id || frame.is_remote() || frame.length() == 0) return;
  const auto payload = frame.payload();
  const std::uint8_t pci_type = payload[0] >> 4;
  switch (pci_type) {
    case kPciSingle: on_single(payload, time); break;
    case kPciFirst: on_first_frame(payload, time); break;
    case kPciConsecutive: on_consecutive(payload, time); break;
    case kPciFlowControl: on_flow_control(payload); break;
    default: ++stats_.malformed_frames; break;
  }
}

void IsoTpChannel::on_single(std::span<const std::uint8_t> payload, sim::SimTime time) {
  const std::size_t len = payload[0] & 0x0F;
  if (len == 0 || len > 7 || payload.size() < len + 1) {
    ++stats_.malformed_frames;
    return;
  }
  ++stats_.messages_received;
  if (on_message_) {
    on_message_(std::vector<std::uint8_t>(payload.begin() + 1,
                                          payload.begin() + 1 + static_cast<std::ptrdiff_t>(len)),
                time);
  }
}

void IsoTpChannel::on_first_frame(std::span<const std::uint8_t> payload, sim::SimTime) {
  if (payload.size() < 8) {
    ++stats_.malformed_frames;
    return;
  }
  if (rx_.state == RxState::kReceiving) abort_rx();  // new FF pre-empts
  const std::size_t len =
      (static_cast<std::size_t>(payload[0] & 0x0F) << 8) | payload[1];
  if (len <= 7) {
    ++stats_.malformed_frames;  // FF must carry > 7 bytes
    return;
  }
  if (len > kMaxPayload) {
    send_flow_control(kFlowOverflow);
    return;
  }
  rx_.state = RxState::kReceiving;
  rx_.expected = len;
  rx_.payload.assign(payload.begin() + 2, payload.begin() + 8);
  rx_.sequence = 0;
  rx_.frames_since_fc = 0;
  send_flow_control(kFlowContinue);
  arm_rx_timeout();
}

void IsoTpChannel::on_consecutive(std::span<const std::uint8_t> payload, sim::SimTime time) {
  if (rx_.state != RxState::kReceiving) {
    ++stats_.malformed_frames;
    return;
  }
  if (payload.size() < 2) {
    // A CF must carry at least one data byte; an empty one would consume a
    // sequence number while contributing nothing, stalling the transfer.
    ++stats_.malformed_frames;
    return;
  }
  const std::uint8_t seq = payload[0] & 0x0F;
  const std::uint8_t expected = static_cast<std::uint8_t>((rx_.sequence + 1) & 0x0F);
  if (seq != expected) {
    abort_rx();
    return;
  }
  rx_.sequence = seq;
  const std::size_t remaining = rx_.expected - rx_.payload.size();
  const std::size_t chunk = std::min<std::size_t>({7, remaining, payload.size() - 1});
  rx_.payload.insert(rx_.payload.end(), payload.begin() + 1,
                     payload.begin() + 1 + static_cast<std::ptrdiff_t>(chunk));

  if (rx_.payload.size() >= rx_.expected) {
    scheduler_.cancel(rx_.timer);
    rx_.state = RxState::kIdle;
    ++stats_.messages_received;
    if (on_message_) on_message_(rx_.payload, time);
    return;
  }
  if (config_.block_size != 0 && ++rx_.frames_since_fc >= config_.block_size) {
    rx_.frames_since_fc = 0;
    send_flow_control(kFlowContinue);
  }
  arm_rx_timeout();
}

void IsoTpChannel::on_flow_control(std::span<const std::uint8_t> payload) {
  if (payload.size() < 3) {
    ++stats_.malformed_frames;  // truncated FC: PCI promises 3 bytes
    return;
  }
  if (tx_.state != TxState::kAwaitingFlowControl) return;
  scheduler_.cancel(tx_.timer);
  const std::uint8_t flow_status = payload[0] & 0x0F;
  if (flow_status == kFlowWait) {
    // N_WFTmax: a peer may ask for a bounded number of consecutive waits;
    // past that it is stalling us (hostile or broken) and we abort instead
    // of re-arming the timeout forever.
    if (++tx_.fc_waits > config_.max_fc_waits) {
      ++stats_.fc_wait_aborts;
      abort_tx();
      return;
    }
    arm_tx_timeout();  // peer asks us to keep waiting
    return;
  }
  if (flow_status != kFlowContinue) {
    abort_tx();
    return;
  }
  tx_.fc_waits = 0;
  tx_.block_limited = payload[1] != 0;
  tx_.frames_until_fc = payload[1];
  // STmin 0x00..0x7F are milliseconds; 0xF1..0xF9 are 100..900 us (round up
  // to 1 ms on our millisecond pacing); other values are reserved => 127 ms.
  const std::uint8_t st = payload[2];
  if (st <= 0x7F) {
    tx_.st_min_ms = st;
  } else if (st >= 0xF1 && st <= 0xF9) {
    tx_.st_min_ms = 1;
  } else {
    tx_.st_min_ms = 127;
  }
  tx_.state = TxState::kSendingConsecutive;
  send_next_consecutive();
}

void IsoTpChannel::arm_tx_timeout() {
  scheduler_.cancel(tx_.timer);
  tx_.timer = scheduler_.schedule_after(config_.timeout, [this] {
    if (tx_.state == TxState::kAwaitingFlowControl) abort_tx();
  });
}

void IsoTpChannel::arm_rx_timeout() {
  scheduler_.cancel(rx_.timer);
  rx_.timer = scheduler_.schedule_after(config_.timeout, [this] {
    if (rx_.state == RxState::kReceiving) abort_rx();
  });
}

void IsoTpChannel::abort_tx() {
  scheduler_.cancel(tx_.timer);
  tx_.state = TxState::kIdle;
  tx_.payload.clear();
  ++stats_.tx_aborts;
  if (on_tx_done_) on_tx_done_(false);
}

void IsoTpChannel::abort_rx() {
  scheduler_.cancel(rx_.timer);
  rx_.state = RxState::kIdle;
  rx_.payload.clear();
  ++stats_.rx_aborts;
}

void IsoTpChannel::finish_tx() {
  scheduler_.cancel(tx_.timer);
  tx_.state = TxState::kIdle;
  tx_.payload.clear();
  ++stats_.messages_sent;
  if (on_tx_done_) on_tx_done_(true);
}

}  // namespace acf::isotp
