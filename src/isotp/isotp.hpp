// ISO 15765-2 (ISO-TP) transport: segments payloads of up to 4095 bytes
// into CAN frames with flow control.  UDS (ISO 14229) runs on top of this —
// the ECU "operating modes" (locked/unlocked for service) the paper calls
// out as a state every tester must cover are reached through these channels.
//
// The channel is deliberately decoupled from the transport: the owner feeds
// received frames through handle_frame() and provides a send function, so an
// ECU can multiplex ISO-TP among its other rx traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "can/frame.hpp"
#include "sim/scheduler.hpp"

namespace acf::isotp {

/// Largest payload a classic ISO-TP transfer can carry (12-bit length).
inline constexpr std::size_t kMaxPayload = 4095;

struct IsoTpConfig {
  std::uint32_t tx_id = 0x7E0;  // id our frames carry
  std::uint32_t rx_id = 0x7E8;  // id we listen for
  /// Flow-control parameters we advertise as a receiver.
  std::uint8_t block_size = 0;  // 0 = send everything after one FC
  std::uint8_t st_min_ms = 0;   // minimum gap between consecutive CFs
  /// N_Bs / N_Cr timeout: how long to wait for the peer's next protocol
  /// frame before aborting a transfer.
  sim::Duration timeout{std::chrono::milliseconds(1000)};
  /// N_WFTmax: consecutive FlowControl-Wait frames tolerated before the
  /// sender aborts.  Without a bound a hostile peer answering every FF with
  /// Wait pins the transmitter in kAwaitingFlowControl forever.
  std::uint8_t max_fc_waits = 8;
  /// Classic CAN frames are padded to 8 bytes with this value (ISO 15765-2
  /// requires consistent DLC for most OEMs).
  bool pad_frames = true;
  std::uint8_t pad_byte = 0xCC;
};

struct IsoTpStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t tx_aborts = 0;        // timeout / overflow / bad FC
  std::uint64_t rx_aborts = 0;        // sequence error / timeout
  std::uint64_t malformed_frames = 0; // unparseable PCI on our rx id
  std::uint64_t fc_wait_aborts = 0;   // peer exceeded N_WFTmax Wait frames
};

class IsoTpChannel {
 public:
  using SendFn = std::function<bool(const can::CanFrame&)>;
  using MessageCallback = std::function<void(const std::vector<std::uint8_t>&, sim::SimTime)>;

  IsoTpChannel(sim::Scheduler& scheduler, SendFn send, IsoTpConfig config);

  /// Starts sending a payload (<= 4095 bytes).  Returns false if a transfer
  /// is already in progress or the payload is too large.
  bool send(std::vector<std::uint8_t> payload);
  bool tx_busy() const noexcept { return tx_.state != TxState::kIdle; }

  /// Feed every received CAN frame here; frames not on rx_id are ignored,
  /// so it is safe to feed the whole bus stream.
  void handle_frame(const can::CanFrame& frame, sim::SimTime time);

  void set_on_message(MessageCallback callback) { on_message_ = std::move(callback); }
  /// Invoked when an outgoing transfer completes (true) or aborts (false).
  void set_on_tx_done(std::function<void(bool)> callback) { on_tx_done_ = std::move(callback); }

  const IsoTpStats& stats() const noexcept { return stats_; }
  const IsoTpConfig& config() const noexcept { return config_; }

 private:
  enum class TxState { kIdle, kAwaitingFlowControl, kSendingConsecutive };
  enum class RxState { kIdle, kReceiving };

  struct TxTransfer {
    TxState state = TxState::kIdle;
    std::vector<std::uint8_t> payload;
    std::size_t offset = 0;
    std::uint8_t sequence = 0;
    std::uint8_t frames_until_fc = 0;  // 0 = unlimited in this block
    bool block_limited = false;
    std::uint8_t st_min_ms = 0;
    std::uint8_t fc_waits = 0;  // consecutive Wait frames in this pause
    sim::EventId timer{};
  };
  struct RxTransfer {
    RxState state = RxState::kIdle;
    std::vector<std::uint8_t> payload;
    std::size_t expected = 0;
    std::uint8_t sequence = 0;
    std::uint8_t frames_since_fc = 0;
    sim::EventId timer{};
  };

  bool send_raw(std::span<const std::uint8_t> bytes);
  void send_single(std::span<const std::uint8_t> payload);
  void send_first_frame();
  void send_next_consecutive();
  void send_flow_control(std::uint8_t flow_status);
  void on_flow_control(std::span<const std::uint8_t> payload);
  void on_first_frame(std::span<const std::uint8_t> payload, sim::SimTime time);
  void on_consecutive(std::span<const std::uint8_t> payload, sim::SimTime time);
  void on_single(std::span<const std::uint8_t> payload, sim::SimTime time);
  void arm_tx_timeout();
  void arm_rx_timeout();
  void abort_tx();
  void abort_rx();
  void finish_tx();

  sim::Scheduler& scheduler_;
  SendFn send_;
  IsoTpConfig config_;
  TxTransfer tx_;
  RxTransfer rx_;
  IsoTpStats stats_;
  MessageCallback on_message_;
  std::function<void(bool)> on_tx_done_;
};

}  // namespace acf::isotp
