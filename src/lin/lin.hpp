// LIN 2.x (Local Interconnect Network): the low-cost master/slave bus the
// paper's introduction lists beside CAN.  In production cars the door-lock
// actuator the bench-top experiment models typically hangs off a LIN
// segment behind the BCM; this substrate lets the framework model (and
// fuzz) that last hop.
//
// Model: single master owning a schedule table.  Each slot transmits a
// header (break + sync + protected id); the publisher of that id — a slave
// or the master itself — answers with 1..8 data bytes and a checksum.  All
// nodes see the completed frame.  Classic (LIN 1.x) and enhanced (LIN 2.x)
// checksums are both supported, as is random corruption for fault tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace acf::lin {

/// LIN frame ids are 6 bits (0..59 usable; 60/61 diagnostic).
inline constexpr std::uint8_t kMaxLinId = 0x3F;

/// Adds the two parity bits (P0 = id0^id1^id2^id4, P1 = ~(id1^id3^id4^id5)).
std::uint8_t protected_id(std::uint8_t id) noexcept;
/// Extracts the id if the parity is valid.
std::optional<std::uint8_t> check_protected_id(std::uint8_t pid) noexcept;

/// Classic checksum: inverted 8-bit carry-wrap sum over data only.
std::uint8_t classic_checksum(std::span<const std::uint8_t> data) noexcept;
/// Enhanced checksum: same sum seeded with the protected id.
std::uint8_t enhanced_checksum(std::uint8_t pid, std::span<const std::uint8_t> data) noexcept;

enum class ChecksumModel : std::uint8_t { kClassic, kEnhanced };

struct LinFrame {
  std::uint8_t id = 0;
  std::vector<std::uint8_t> data;
};

/// A node on the LIN cluster.  Publishers answer on_header for the ids they
/// own; every node sees completed frames via on_frame.
class LinSlave {
 public:
  virtual ~LinSlave() = default;
  /// Return the response data (1..8 bytes) if this node publishes `id`.
  virtual std::optional<std::vector<std::uint8_t>> on_header(std::uint8_t id) = 0;
  /// A frame (header + response) completed on the bus.
  virtual void on_frame(const LinFrame& frame, sim::SimTime time) {
    (void)frame;
    (void)time;
  }
};

struct ScheduleEntry {
  std::uint8_t id = 0;
  /// Slot duration; must cover header + response at the bus bitrate.
  sim::Duration slot{std::chrono::milliseconds(10)};
};

struct LinBusConfig {
  std::uint32_t bitrate = 19'200;
  ChecksumModel checksum = ChecksumModel::kEnhanced;
  /// Probability a response byte is corrupted in flight.
  double corruption_probability = 0.0;
  std::uint64_t seed = 0x11A;
};

struct LinStats {
  std::uint64_t headers_sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t no_response = 0;       // nobody publishes the id
  std::uint64_t checksum_errors = 0;   // corrupted responses discarded
};

/// The cluster: master + wire in one object (LIN is single-master).
class LinBus {
 public:
  LinBus(sim::Scheduler& scheduler, std::vector<ScheduleEntry> schedule,
         LinBusConfig config = {});

  /// Registers a slave (not owned; must outlive the bus).
  void attach(LinSlave& slave);

  /// The master may publish ids itself (e.g. command frames).
  void set_master_response(std::uint8_t id,
                           std::function<std::vector<std::uint8_t>()> provider);

  /// Starts cycling the schedule table.
  void start();
  void stop();

  /// Fires one unscheduled slot immediately (event-triggered frame).
  void kick(std::uint8_t id);

  const LinStats& stats() const noexcept { return stats_; }
  const LinBusConfig& config() const noexcept { return config_; }

 private:
  void run_slot(std::uint8_t id);
  sim::Duration frame_time(std::size_t data_bytes) const;

  sim::Scheduler& scheduler_;
  std::vector<ScheduleEntry> schedule_;
  LinBusConfig config_;
  util::Rng rng_;
  std::vector<LinSlave*> slaves_;
  std::vector<std::pair<std::uint8_t, std::function<std::vector<std::uint8_t>()>>>
      master_responses_;
  std::size_t cursor_ = 0;
  sim::EventId slot_event_{};
  LinStats stats_;
  bool running_ = false;
};

}  // namespace acf::lin
