#include "lin/lin.hpp"

namespace acf::lin {

std::uint8_t protected_id(std::uint8_t id) noexcept {
  id &= kMaxLinId;
  const auto bit = [id](int n) { return (id >> n) & 1; };
  const std::uint8_t p0 = static_cast<std::uint8_t>(bit(0) ^ bit(1) ^ bit(2) ^ bit(4));
  const std::uint8_t p1 = static_cast<std::uint8_t>(1 ^ (bit(1) ^ bit(3) ^ bit(4) ^ bit(5)));
  return static_cast<std::uint8_t>(id | (p0 << 6) | (p1 << 7));
}

std::optional<std::uint8_t> check_protected_id(std::uint8_t pid) noexcept {
  const std::uint8_t id = pid & kMaxLinId;
  if (protected_id(id) != pid) return std::nullopt;
  return id;
}

namespace {
std::uint8_t carry_sum(std::uint16_t seed, std::span<const std::uint8_t> data) noexcept {
  std::uint16_t sum = seed;
  for (std::uint8_t byte : data) {
    sum = static_cast<std::uint16_t>(sum + byte);
    if (sum >= 256) sum = static_cast<std::uint16_t>(sum - 255);
  }
  return static_cast<std::uint8_t>(~sum & 0xFF);
}
}  // namespace

std::uint8_t classic_checksum(std::span<const std::uint8_t> data) noexcept {
  return carry_sum(0, data);
}

std::uint8_t enhanced_checksum(std::uint8_t pid, std::span<const std::uint8_t> data) noexcept {
  return carry_sum(pid, data);
}

LinBus::LinBus(sim::Scheduler& scheduler, std::vector<ScheduleEntry> schedule,
               LinBusConfig config)
    : scheduler_(scheduler), schedule_(std::move(schedule)), config_(config),
      rng_(config.seed) {}

void LinBus::attach(LinSlave& slave) { slaves_.push_back(&slave); }

void LinBus::set_master_response(std::uint8_t id,
                                 std::function<std::vector<std::uint8_t>()> provider) {
  master_responses_.emplace_back(static_cast<std::uint8_t>(id & kMaxLinId),
                                 std::move(provider));
}

sim::Duration LinBus::frame_time(std::size_t data_bytes) const {
  // Break (14 bits) + sync (10) + pid (10) + N x 10 data bits + checksum
  // (10), with the standard 1.4 inter-byte-space factor.
  const double bits = (14.0 + 10.0 + 10.0 + 10.0 * static_cast<double>(data_bytes + 1)) * 1.4;
  const double seconds = bits / static_cast<double>(config_.bitrate);
  return sim::Duration{static_cast<std::int64_t>(seconds * 1e9)};
}

void LinBus::start() {
  if (running_ || schedule_.empty()) return;
  running_ = true;
  cursor_ = 0;
  const auto fire = [this] {
    if (!running_) return;
    const ScheduleEntry& entry = schedule_[cursor_];
    cursor_ = (cursor_ + 1) % schedule_.size();
    run_slot(entry.id);
  };
  // Uniform slots: use the first entry's slot as the tick (schedule tables
  // with uniform slots are the common configuration).
  slot_event_ = scheduler_.schedule_every(schedule_.front().slot, fire);
}

void LinBus::stop() {
  running_ = false;
  scheduler_.cancel(slot_event_);
  slot_event_ = {};
}

void LinBus::kick(std::uint8_t id) { run_slot(static_cast<std::uint8_t>(id & kMaxLinId)); }

void LinBus::run_slot(std::uint8_t id) {
  ++stats_.headers_sent;
  const std::uint8_t pid = protected_id(id);

  // Who publishes this id?  Master responses take precedence, then slaves
  // in attach order (a real cluster has exactly one publisher per id).
  std::optional<std::vector<std::uint8_t>> response;
  for (const auto& [master_id, provider] : master_responses_) {
    if (master_id == id) {
      response = provider();
      break;
    }
  }
  if (!response) {
    for (LinSlave* slave : slaves_) {
      response = slave->on_header(id);
      if (response) break;
    }
  }
  if (!response || response->empty() || response->size() > 8) {
    ++stats_.no_response;
    return;
  }

  // Wire transit (and optional corruption).
  std::vector<std::uint8_t> data = *response;
  std::uint8_t checksum = config_.checksum == ChecksumModel::kClassic
                              ? classic_checksum(data)
                              : enhanced_checksum(pid, data);
  if (config_.corruption_probability > 0.0 &&
      rng_.next_bool(config_.corruption_probability)) {
    const auto victim = static_cast<std::size_t>(rng_.next_below(data.size()));
    data[victim] = static_cast<std::uint8_t>(data[victim] ^ (1u << rng_.next_below(8)));
  }
  const std::uint8_t expected = config_.checksum == ChecksumModel::kClassic
                                    ? classic_checksum(data)
                                    : enhanced_checksum(pid, data);
  const sim::Duration transit = frame_time(data.size());
  if (expected != checksum) {
    // Receivers detect the mismatch and discard the frame.
    scheduler_.schedule_after(transit, [this] { ++stats_.checksum_errors; });
    return;
  }

  LinFrame frame{id, std::move(data)};
  scheduler_.schedule_after(transit, [this, frame = std::move(frame)] {
    ++stats_.responses;
    const sim::SimTime now = scheduler_.now();
    for (LinSlave* slave : slaves_) slave->on_frame(frame, now);
  });
}

}  // namespace acf::lin
