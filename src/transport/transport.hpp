// Transport abstraction: the fuzzer, trace tools and UDS client run on top
// of `CanTransport`, so the same campaign code drives the in-process virtual
// bus (all experiments here) or a Linux SocketCAN interface (real hardware /
// vcan), mirroring the paper's PC-fuzzer-plus-USB-adaptor architecture.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "can/frame.hpp"
#include "sim/time.hpp"

namespace acf::can {
class ErrorState;
}

namespace acf::transport {

/// Called for every received frame with its receive timestamp.
using RxCallback = std::function<void(const can::CanFrame&, sim::SimTime)>;

struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t send_failures = 0;
};

class CanTransport {
 public:
  virtual ~CanTransport() = default;

  /// Queues a frame for transmission.  Returns false if it could not be
  /// queued (closed transport, full queue, bus-off...).
  virtual bool send(const can::CanFrame& frame) = 0;

  /// Registers the receive callback (replacing any previous one).
  virtual void set_rx_callback(RxCallback callback) = 0;

  /// Human-readable endpoint name ("vbus:fuzzer", "can0"...).
  virtual std::string name() const = 0;

  virtual const TransportStats& stats() const = 0;

  /// Fault-confinement view of the underlying CAN controller, when the
  /// transport exposes one (virtual-bus nodes do; SocketCAN does not).
  /// nullptr means "unknown" — senders that care (e.g. a babbling attacker
  /// that must fall silent in bus-off) treat unknown as error-active.
  virtual const can::ErrorState* bus_error_state() const { return nullptr; }
};

}  // namespace acf::transport
