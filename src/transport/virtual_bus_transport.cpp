#include "transport/virtual_bus_transport.hpp"

#include <utility>

namespace acf::transport {

VirtualBusTransport::VirtualBusTransport(can::VirtualBus& bus, std::string name,
                                         can::FilterBank filters, bool listen_only)
    : bus_(bus), name_(std::move(name)) {
  node_ = bus_.attach(*this, name_, std::move(filters), listen_only);
}

VirtualBusTransport::~VirtualBusTransport() { bus_.detach(node_); }

bool VirtualBusTransport::send(const can::CanFrame& frame) {
  const bool ok = bus_.submit(node_, frame);
  if (ok) {
    ++stats_.frames_sent;
  } else {
    ++stats_.send_failures;
  }
  return ok;
}

void VirtualBusTransport::set_rx_callback(RxCallback callback) { rx_ = std::move(callback); }

void VirtualBusTransport::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  ++stats_.frames_received;
  if (rx_) rx_(frame, time);
}

}  // namespace acf::transport
