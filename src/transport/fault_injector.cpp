#include "transport/fault_injector.hpp"

#include <vector>

namespace acf::transport {

FaultInjector::FaultInjector(CanTransport& inner, FaultPlan plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {}

can::CanFrame FaultInjector::maybe_corrupt(const can::CanFrame& frame, double probability,
                                           bool& corrupted) {
  corrupted = false;
  if (probability <= 0.0 || frame.length() == 0 || frame.is_remote() ||
      !rng_.next_bool(probability)) {
    return frame;
  }
  std::vector<std::uint8_t> bytes(frame.payload().begin(), frame.payload().end());
  const auto index = static_cast<std::size_t>(rng_.next_below(bytes.size()));
  const auto bit = static_cast<std::uint8_t>(1u << rng_.next_below(8));
  bytes[index] = static_cast<std::uint8_t>(bytes[index] ^ bit);
  corrupted = true;
  auto mutated = frame.is_fd() ? can::CanFrame::fd_data(frame.id(), bytes, frame.brs(),
                                                        frame.format())
                               : can::CanFrame::data(frame.id(), bytes, frame.format());
  return mutated.value_or(frame);
}

bool FaultInjector::send(const can::CanFrame& frame) {
  if (plan_.tx_drop > 0.0 && rng_.next_bool(plan_.tx_drop)) {
    ++fault_stats_.tx_dropped;
    return true;  // silently vanishes: the sender believes it was queued
  }
  bool corrupted = false;
  const can::CanFrame out = maybe_corrupt(frame, plan_.tx_corrupt, corrupted);
  if (corrupted) ++fault_stats_.tx_corrupted;
  return inner_.send(out);
}

void FaultInjector::set_rx_callback(RxCallback callback) {
  inner_.set_rx_callback([this, cb = std::move(callback)](const can::CanFrame& frame,
                                                          sim::SimTime time) {
    if (!cb) return;
    if (plan_.rx_drop > 0.0 && rng_.next_bool(plan_.rx_drop)) {
      ++fault_stats_.rx_dropped;
      return;
    }
    bool corrupted = false;
    const can::CanFrame out = maybe_corrupt(frame, plan_.rx_corrupt, corrupted);
    if (corrupted) ++fault_stats_.rx_corrupted;
    cb(out, time);
    if (plan_.rx_duplicate > 0.0 && rng_.next_bool(plan_.rx_duplicate)) {
      ++fault_stats_.rx_duplicated;
      cb(out, time);
    }
  });
}

}  // namespace acf::transport
