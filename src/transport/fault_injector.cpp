#include "transport/fault_injector.hpp"

#include <utility>
#include <vector>

namespace acf::transport {

FaultInjector::FaultInjector(CanTransport& inner, FaultPlan plan)
    : inner_(inner), plan_(plan), rng_(plan.seed) {}

FaultInjector::FaultInjector(CanTransport& inner, FaultPlan plan, sim::Scheduler& scheduler)
    : inner_(inner), plan_(plan), scheduler_(&scheduler), rng_(plan.seed) {}

can::CanFrame FaultInjector::maybe_corrupt(const can::CanFrame& frame, double probability,
                                           bool& corrupted) {
  corrupted = false;
  if (probability <= 0.0 || frame.length() == 0 || frame.is_remote() ||
      !rng_.next_bool(probability)) {
    return frame;
  }
  std::vector<std::uint8_t> bytes(frame.payload().begin(), frame.payload().end());
  const auto index = static_cast<std::size_t>(rng_.next_below(bytes.size()));
  const auto bit = static_cast<std::uint8_t>(1u << rng_.next_below(8));
  bytes[index] = static_cast<std::uint8_t>(bytes[index] ^ bit);
  corrupted = true;
  auto mutated = frame.is_fd() ? can::CanFrame::fd_data(frame.id(), bytes, frame.brs(),
                                                        frame.format())
                               : can::CanFrame::data(frame.id(), bytes, frame.format());
  return mutated.value_or(frame);
}

bool FaultInjector::burst_dropped() {
  if (!plan_.burst_loss) return false;
  // Transition first, then draw the loss for the state we landed in.
  if (ge_bad_) {
    if (rng_.next_bool(plan_.burst_r)) ge_bad_ = false;
  } else {
    if (rng_.next_bool(plan_.burst_p)) ge_bad_ = true;
  }
  const double loss = ge_bad_ ? plan_.loss_bad : plan_.loss_good;
  if (!rng_.next_bool(loss)) return false;
  if (ge_bad_) ++fault_stats_.rx_burst_dropped;
  ++fault_stats_.rx_dropped;
  return true;
}

bool FaultInjector::send(const can::CanFrame& frame) {
  if (plan_.tx_drop > 0.0 && rng_.next_bool(plan_.tx_drop)) {
    ++fault_stats_.tx_dropped;
    ++stats_.frames_sent;
    return true;  // silently vanishes: the sender believes it was queued
  }
  bool corrupted = false;
  const can::CanFrame out = maybe_corrupt(frame, plan_.tx_corrupt, corrupted);
  if (corrupted) ++fault_stats_.tx_corrupted;
  if (!inner_.send(out)) {
    ++stats_.send_failures;
    return false;
  }
  ++stats_.frames_sent;
  return true;
}

void FaultInjector::deliver(const can::CanFrame& frame, sim::SimTime time) {
  if (!rx_) return;
  ++stats_.frames_received;
  rx_(frame, time);
  if (plan_.rx_duplicate > 0.0 && rng_.next_bool(plan_.rx_duplicate)) {
    ++fault_stats_.rx_duplicated;
    ++stats_.frames_received;
    rx_(frame, time);
  }
}

void FaultInjector::dispatch(const can::CanFrame& frame, sim::SimTime time) {
  // Reordering: hold this frame back one slot; the next dispatch releases
  // it after its own delivery, swapping the pair.
  if (plan_.rx_reorder > 0.0 && !held_ && rng_.next_bool(plan_.rx_reorder)) {
    ++fault_stats_.rx_reordered;
    held_ = {frame, time};
    return;
  }
  deliver(frame, time);
  if (held_) {
    const auto [held_frame, held_time] = *std::exchange(held_, std::nullopt);
    deliver(held_frame, held_time);
  }
}

void FaultInjector::set_rx_callback(RxCallback callback) {
  rx_ = std::move(callback);
  inner_.set_rx_callback([this](const can::CanFrame& frame, sim::SimTime time) {
    if (!rx_) return;
    if (burst_dropped()) return;
    if (plan_.rx_drop > 0.0 && rng_.next_bool(plan_.rx_drop)) {
      ++fault_stats_.rx_dropped;
      return;
    }
    bool corrupted = false;
    const can::CanFrame out = maybe_corrupt(frame, plan_.rx_corrupt, corrupted);
    if (corrupted) ++fault_stats_.rx_corrupted;

    sim::Duration delay = plan_.rx_delay;
    if (plan_.rx_jitter.count() > 0) {
      delay += sim::Duration{static_cast<std::int64_t>(
          rng_.next_below(static_cast<std::uint64_t>(plan_.rx_jitter.count()) + 1))};
    }
    if (scheduler_ != nullptr && delay.count() > 0) {
      ++fault_stats_.rx_delayed;
      // Deliveries with unequal jitter can overtake each other — that is the
      // point; the timestamp handed on is the (delayed) delivery time.
      scheduler_->schedule_after(delay, [this, out] {
        dispatch(out, scheduler_->now());
      });
      return;
    }
    dispatch(out, time);
  });
}

}  // namespace acf::transport
