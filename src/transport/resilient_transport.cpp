#include "transport/resilient_transport.hpp"

#include <algorithm>
#include <utility>

namespace acf::transport {

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

ResilientTransport::ResilientTransport(CanTransport& inner, sim::Scheduler& scheduler,
                                       RetryPolicy retry, CircuitBreakerPolicy breaker)
    : inner_(inner), scheduler_(scheduler), retry_(retry), breaker_(breaker),
      jitter_rng_(retry.jitter_seed), current_open_duration_(breaker.open_duration) {}

ResilientTransport::~ResilientTransport() {
  for (auto& [ticket, pending] : pending_) scheduler_.cancel(pending.event);
  scheduler_.cancel(half_open_event_);
}

void ResilientTransport::set_rx_callback(RxCallback callback) {
  inner_.set_rx_callback([this, cb = std::move(callback)](const can::CanFrame& frame,
                                                          sim::SimTime time) {
    ++stats_.frames_received;
    if (cb) cb(frame, time);
  });
}

bool ResilientTransport::attempt(const can::CanFrame& frame) {
  const bool ok = inner_.send(frame);
  if (ok) {
    note_success();
  } else {
    note_failure();
  }
  return ok;
}

void ResilientTransport::note_success() noexcept {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    // Probe succeeded: close and forget the escalated open window.
    state_ = BreakerState::kClosed;
    current_open_duration_ = breaker_.open_duration;
    ++resilience_.breaker_recoveries;
  }
}

void ResilientTransport::note_failure() {
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: re-open with an escalated window.
    state_ = BreakerState::kClosed;  // trip_breaker re-opens
    trip_breaker();
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= breaker_.failure_threshold) {
    trip_breaker();
  }
}

void ResilientTransport::trip_breaker() {
  if (state_ == BreakerState::kOpen) return;
  state_ = BreakerState::kOpen;
  ++resilience_.breaker_trips;
  scheduler_.cancel(half_open_event_);
  half_open_event_ = scheduler_.schedule_after(current_open_duration_,
                                               [this] { enter_half_open(); });
  const auto escalated = std::chrono::duration_cast<sim::Duration>(
      current_open_duration_ * breaker_.open_backoff_multiplier);
  current_open_duration_ = std::min(escalated, breaker_.max_open_duration);
}

void ResilientTransport::enter_half_open() {
  if (state_ == BreakerState::kOpen) state_ = BreakerState::kHalfOpen;
}

sim::Duration ResilientTransport::backoff_for(std::uint32_t attempts_made) {
  // attempts_made = 1 -> initial backoff, doubling (by default) thereafter.
  double scale = 1.0;
  for (std::uint32_t i = 1; i < attempts_made; ++i) scale *= retry_.backoff_multiplier;
  auto base = std::chrono::duration_cast<sim::Duration>(retry_.initial_backoff * scale);
  base = std::min(base, retry_.max_backoff);
  if (retry_.jitter > 0.0) {
    const double factor = 1.0 + retry_.jitter * jitter_rng_.next_double();
    base = std::chrono::duration_cast<sim::Duration>(base * factor);
  }
  return base;
}

void ResilientTransport::schedule_retry(std::uint64_t ticket) {
  Pending& pending = pending_.at(ticket);
  pending.event = scheduler_.schedule_after(backoff_for(pending.attempts),
                                            [this, ticket] { retry_tick(ticket); });
}

void ResilientTransport::retry_tick(std::uint64_t ticket) {
  const auto it = pending_.find(ticket);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (state_ == BreakerState::kOpen) {
    // Hold the frame while the breaker cools down; re-check shortly after
    // the half-open probe window opens.
    pending.event = scheduler_.schedule_after(current_open_duration_,
                                              [this, ticket] { retry_tick(ticket); });
    return;
  }
  ++resilience_.retry_attempts;
  ++pending.attempts;
  if (attempt(pending.frame)) {
    ++stats_.frames_sent;
    ++resilience_.retried_successes;
    pending_.erase(it);
    return;
  }
  if (pending.attempts >= retry_.max_attempts) {
    ++resilience_.frames_abandoned;
    ++stats_.send_failures;
    pending_.erase(it);
    return;
  }
  schedule_retry(ticket);
}

bool ResilientTransport::send(const can::CanFrame& frame) {
  if (state_ == BreakerState::kOpen) {
    ++resilience_.breaker_rejections;
    ++stats_.send_failures;
    return false;
  }
  if (attempt(frame)) {
    ++stats_.frames_sent;
    ++resilience_.immediate_successes;
    return true;
  }
  if (retry_.max_attempts <= 1 || pending_.size() >= retry_.max_pending) {
    if (retry_.max_attempts > 1) ++resilience_.queue_rejections;
    ++stats_.send_failures;
    return false;
  }
  const std::uint64_t ticket = next_ticket_++;
  pending_.emplace(ticket, Pending{frame, 1, {}});
  schedule_retry(ticket);
  return true;  // accepted: will be retried with backoff
}

}  // namespace acf::transport
