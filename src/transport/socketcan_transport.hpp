// Linux SocketCAN backend: runs a campaign against a real interface (can0)
// or a virtual kernel interface (vcan0) — the drop-in replacement for the
// paper's PCAN-USB adaptor.  Receive is pumped explicitly (poll()), keeping
// the library single-threaded and deterministic.
//
// Timestamps delivered to the rx callback are wall-clock time since the
// transport was opened, mapped onto the SimTime axis so oracles and capture
// tools work identically on both backends.
#pragma once

#include <cstdint>
#include <string>

#include "transport/transport.hpp"

namespace acf::transport {

class SocketCanTransport final : public CanTransport {
 public:
  SocketCanTransport() = default;
  ~SocketCanTransport() override;

  SocketCanTransport(const SocketCanTransport&) = delete;
  SocketCanTransport& operator=(const SocketCanTransport&) = delete;

  /// Binds a raw CAN socket to `interface` (e.g. "vcan0").  Returns false
  /// (with a message in last_error()) if the socket cannot be opened, e.g.
  /// no such interface or missing kernel support.
  bool open(const std::string& interface, bool enable_fd = false);
  void close();
  bool is_open() const noexcept { return fd_ >= 0; }

  bool send(const can::CanFrame& frame) override;
  void set_rx_callback(RxCallback callback) override;
  std::string name() const override { return interface_; }
  const TransportStats& stats() const override { return stats_; }

  /// Drains pending frames, invoking the rx callback for each.  Waits up to
  /// `timeout_ms` for the first frame.  Returns the number delivered.
  std::size_t pump(int timeout_ms = 0);

  const std::string& last_error() const noexcept { return last_error_; }

  /// Times a send hit a full kernel tx queue (ENOBUFS/EAGAIN) and waited
  /// briefly instead of failing — the classic SocketCAN pitfall.
  std::uint64_t tx_queue_full_retries() const noexcept { return tx_queue_full_retries_; }

 private:
  /// Bounded-retry write: transient queue-full errors wait ~one frame time.
  bool write_with_retry(const void* buffer, std::size_t size);

  int fd_ = -1;
  bool fd_enabled_ = false;
  std::string interface_;
  std::string last_error_;
  RxCallback rx_;
  TransportStats stats_;
  std::int64_t epoch_ns_ = 0;
  std::uint64_t tx_queue_full_retries_ = 0;
};

}  // namespace acf::transport
