// CanTransport adaptor over a VirtualBus node.
#pragma once

#include <string>

#include "can/bus.hpp"
#include "transport/transport.hpp"

namespace acf::transport {

class VirtualBusTransport final : public CanTransport, private can::BusListener {
 public:
  /// Attaches to the bus under `name`.  The transport must not outlive the
  /// bus.  `filters` restricts reception like controller hardware filters.
  VirtualBusTransport(can::VirtualBus& bus, std::string name, can::FilterBank filters = {},
                      bool listen_only = false);
  ~VirtualBusTransport() override;

  VirtualBusTransport(const VirtualBusTransport&) = delete;
  VirtualBusTransport& operator=(const VirtualBusTransport&) = delete;

  bool send(const can::CanFrame& frame) override;
  void set_rx_callback(RxCallback callback) override;
  std::string name() const override { return "vbus:" + name_; }
  const TransportStats& stats() const override { return stats_; }

  can::NodeId node_id() const noexcept { return node_; }
  const can::ErrorState& error_state() const { return bus_.error_state(node_); }
  const can::ErrorState* bus_error_state() const override { return &error_state(); }

 private:
  void on_frame(const can::CanFrame& frame, sim::SimTime time) override;

  can::VirtualBus& bus_;
  std::string name_;
  can::NodeId node_;
  RxCallback rx_;
  TransportStats stats_;
};

}  // namespace acf::transport
