// Fault-injecting transport decorator: drops, corrupts or duplicates frames
// in either direction.  Used by the test suite to exercise oracle behaviour
// under a lossy tap — the paper notes that any extra monitoring channel is
// itself an attack/noise surface.
#pragma once

#include <memory>

#include "transport/transport.hpp"
#include "util/rng.hpp"

namespace acf::transport {

struct FaultPlan {
  double tx_drop = 0.0;       // probability a sent frame silently vanishes
  double rx_drop = 0.0;       // probability a received frame is not delivered
  double tx_corrupt = 0.0;    // probability a payload byte of a sent frame flips
  double rx_corrupt = 0.0;    // same for received frames
  double rx_duplicate = 0.0;  // probability a received frame is delivered twice
  std::uint64_t seed = 0xfa017;
};

struct FaultStats {
  std::uint64_t tx_dropped = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_corrupted = 0;
  std::uint64_t rx_corrupted = 0;
  std::uint64_t rx_duplicated = 0;
};

class FaultInjector final : public CanTransport {
 public:
  /// Wraps `inner`, which must outlive the injector.
  FaultInjector(CanTransport& inner, FaultPlan plan);

  bool send(const can::CanFrame& frame) override;
  void set_rx_callback(RxCallback callback) override;
  std::string name() const override { return "faulty:" + inner_.name(); }
  const TransportStats& stats() const override { return inner_.stats(); }

  const FaultStats& fault_stats() const noexcept { return fault_stats_; }

 private:
  can::CanFrame maybe_corrupt(const can::CanFrame& frame, double probability, bool& corrupted);

  CanTransport& inner_;
  FaultPlan plan_;
  util::Rng rng_;
  FaultStats fault_stats_;
};

}  // namespace acf::transport
