// Fault-injecting transport decorator: drops, corrupts, duplicates, delays
// or reorders frames in either direction.  Used by the test suite to
// exercise oracle behaviour under a lossy tap — the paper notes that any
// extra monitoring channel is itself an attack/noise surface.
//
// Loss comes in two flavours: independent Bernoulli drops (tx_drop/rx_drop)
// and bursty loss via a two-state Gilbert–Elliott channel — the classic
// model for the correlated error bursts a marginal transceiver or connector
// produces, which independent drops cannot reproduce.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "sim/scheduler.hpp"
#include "transport/transport.hpp"
#include "util/rng.hpp"

namespace acf::transport {

struct FaultPlan {
  double tx_drop = 0.0;       // probability a sent frame silently vanishes
  double rx_drop = 0.0;       // probability a received frame is not delivered
  double tx_corrupt = 0.0;    // probability a payload byte of a sent frame flips
  double rx_corrupt = 0.0;    // same for received frames
  double rx_duplicate = 0.0;  // probability a received frame is delivered twice

  // --- delivery timing (needs the scheduler-taking constructor) -----------
  /// Fixed extra latency on every rx delivery.
  sim::Duration rx_delay{0};
  /// Uniform extra jitter in [0, rx_jitter] per delivery.  Jittered frames
  /// that overtake each other are delivered out of order, like a congested
  /// gateway or USB adaptor.
  sim::Duration rx_jitter{0};
  /// Probability a delivery is held back and released only after the next
  /// frame — explicit adjacent-pair reordering (works without a scheduler).
  double rx_reorder = 0.0;

  // --- Gilbert–Elliott burst loss (rx direction) ---------------------------
  /// Enables the two-state channel; per-frame state transitions.
  bool burst_loss = false;
  double burst_p = 0.05;   // P(good -> bad)
  double burst_r = 0.5;    // P(bad -> good)
  double loss_good = 0.0;  // drop probability while in the good state
  double loss_bad = 1.0;   // drop probability while in the bad state

  std::uint64_t seed = 0xfa017;
};

struct FaultStats {
  std::uint64_t tx_dropped = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_corrupted = 0;
  std::uint64_t rx_corrupted = 0;
  std::uint64_t rx_duplicated = 0;
  std::uint64_t rx_delayed = 0;
  std::uint64_t rx_reordered = 0;
  std::uint64_t rx_burst_dropped = 0;  // losses decided in the GE bad state
};

class FaultInjector final : public CanTransport {
 public:
  /// Wraps `inner`, which must outlive the injector.  Timing faults
  /// (rx_delay/rx_jitter) are inert without a scheduler.
  FaultInjector(CanTransport& inner, FaultPlan plan);
  FaultInjector(CanTransport& inner, FaultPlan plan, sim::Scheduler& scheduler);

  bool send(const can::CanFrame& frame) override;
  void set_rx_callback(RxCallback callback) override;
  std::string name() const override { return "faulty:" + inner_.name(); }
  /// This layer's own counts: a frame the injector swallowed still counts
  /// as sent here (the caller saw success), and duplicated deliveries count
  /// twice — so the difference against the inner transport's stats is
  /// exactly the injected fault load.
  const TransportStats& stats() const override { return stats_; }

  const FaultStats& fault_stats() const noexcept { return fault_stats_; }
  /// Current Gilbert–Elliott channel state (true = bad/bursty).
  bool in_burst() const noexcept { return ge_bad_; }

 private:
  can::CanFrame maybe_corrupt(const can::CanFrame& frame, double probability, bool& corrupted);
  /// Applies the GE transition + loss decision for one rx frame.
  bool burst_dropped();
  void deliver(const can::CanFrame& frame, sim::SimTime time);
  void dispatch(const can::CanFrame& frame, sim::SimTime time);

  CanTransport& inner_;
  FaultPlan plan_;
  sim::Scheduler* scheduler_ = nullptr;
  util::Rng rng_;
  FaultStats fault_stats_;
  TransportStats stats_;
  RxCallback rx_;
  bool ge_bad_ = false;
  std::optional<std::pair<can::CanFrame, sim::SimTime>> held_;  // reorder slot
};

}  // namespace acf::transport
