#include "transport/socketcan_transport.hpp"

#ifdef __linux__
#include <linux/can.h>
#include <linux/can/raw.h>
#include <net/if.h>
#include <poll.h>
#include <string.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>
#endif

namespace acf::transport {

SocketCanTransport::~SocketCanTransport() { close(); }

#ifdef __linux__

namespace {
std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The classic SocketCAN pitfall: a full interface tx queue surfaces as
// ENOBUFS (or EAGAIN on non-blocking sockets), which is a transient
// condition, not a dead link.  A short bounded retry drains in well under a
// frame time at 500 kb/s.
constexpr int kTxQueueFullRetries = 5;
constexpr long kTxQueueFullWaitNs = 200'000;  // 200 us ~ one max-length frame
}  // namespace

bool SocketCanTransport::open(const std::string& interface, bool enable_fd) {
  close();
  fd_ = ::socket(PF_CAN, SOCK_RAW | SOCK_NONBLOCK, CAN_RAW);
  if (fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (enable_fd) {
    const int on = 1;
    if (::setsockopt(fd_, SOL_CAN_RAW, CAN_RAW_FD_FRAMES, &on, sizeof on) != 0) {
      last_error_ = std::string("CAN_RAW_FD_FRAMES: ") + std::strerror(errno);
      close();
      return false;
    }
    fd_enabled_ = true;
  }
  struct ifreq ifr {};
  std::snprintf(ifr.ifr_name, sizeof ifr.ifr_name, "%s", interface.c_str());
  if (::ioctl(fd_, SIOCGIFINDEX, &ifr) != 0) {
    last_error_ = "no such interface: " + interface;
    close();
    return false;
  }
  struct sockaddr_can addr {};
  addr.can_family = AF_CAN;
  addr.can_ifindex = ifr.ifr_ifindex;
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    last_error_ = std::string("bind: ") + std::strerror(errno);
    close();
    return false;
  }
  interface_ = interface;
  epoch_ns_ = monotonic_ns();
  return true;
}

void SocketCanTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  fd_enabled_ = false;
}

bool SocketCanTransport::write_with_retry(const void* buffer, std::size_t size) {
  for (int attempt = 0;; ++attempt) {
    if (::write(fd_, buffer, size) == static_cast<ssize_t>(size)) return true;
    if ((errno != ENOBUFS && errno != EAGAIN) || attempt >= kTxQueueFullRetries) {
      last_error_ = std::string("write: ") + std::strerror(errno);
      return false;
    }
    ++tx_queue_full_retries_;
    struct timespec wait {};
    wait.tv_nsec = kTxQueueFullWaitNs;
    ::nanosleep(&wait, nullptr);
  }
}

bool SocketCanTransport::send(const can::CanFrame& frame) {
  if (fd_ < 0) {
    ++stats_.send_failures;
    return false;
  }
  const std::uint32_t flags = frame.is_extended() ? CAN_EFF_FLAG : 0;
  if (frame.is_fd()) {
    if (!fd_enabled_) {
      ++stats_.send_failures;
      last_error_ = "FD frame on a classic-only socket";
      return false;
    }
    struct canfd_frame out {};
    out.can_id = frame.id() | flags;
    out.len = static_cast<std::uint8_t>(frame.length());
    out.flags = frame.brs() ? CANFD_BRS : 0;
    std::memcpy(out.data, frame.payload().data(), frame.length());
    if (!write_with_retry(&out, sizeof out)) {
      ++stats_.send_failures;
      return false;
    }
  } else {
    struct can_frame out {};
    out.can_id = frame.id() | flags | (frame.is_remote() ? CAN_RTR_FLAG : 0);
    out.can_dlc = frame.dlc();
    std::memcpy(out.data, frame.payload().data(), frame.length());
    if (!write_with_retry(&out, sizeof out)) {
      ++stats_.send_failures;
      return false;
    }
  }
  ++stats_.frames_sent;
  return true;
}

void SocketCanTransport::set_rx_callback(RxCallback callback) { rx_ = std::move(callback); }

std::size_t SocketCanTransport::pump(int timeout_ms) {
  if (fd_ < 0) return 0;
  std::size_t delivered = 0;
  struct pollfd pfd {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int wait = timeout_ms;
  for (;;) {
    const int ready = ::poll(&pfd, 1, wait);
    wait = 0;  // only the first iteration blocks
    if (ready <= 0) break;
    // The kernel hands back canfd_frame-sized reads when FD is enabled.
    union {
      struct can_frame classic;
      struct canfd_frame fd;
    } in{};
    const ssize_t n = ::read(fd_, &in, sizeof in);
    if (n < 0) break;
    const sim::SimTime now{monotonic_ns() - epoch_ns_};
    const bool is_fd = (n == sizeof(struct canfd_frame)) && fd_enabled_;
    const std::uint32_t raw_id = is_fd ? in.fd.can_id : in.classic.can_id;
    const bool extended = (raw_id & CAN_EFF_FLAG) != 0;
    const std::uint32_t id = raw_id & (extended ? CAN_EFF_MASK : CAN_SFF_MASK);
    const auto format = extended ? can::IdFormat::kExtended : can::IdFormat::kStandard;

    std::optional<can::CanFrame> frame;
    if (is_fd) {
      frame = can::CanFrame::fd_data(id, {in.fd.data, in.fd.len},
                                     (in.fd.flags & CANFD_BRS) != 0, format);
    } else if ((raw_id & CAN_RTR_FLAG) != 0) {
      frame = can::CanFrame::remote(id, in.classic.can_dlc, format);
    } else {
      frame = can::CanFrame::data(id, {in.classic.data, in.classic.can_dlc}, format);
    }
    if (!frame) continue;
    ++stats_.frames_received;
    ++delivered;
    if (rx_) rx_(*frame, now);
  }
  return delivered;
}

#else  // !__linux__

bool SocketCanTransport::open(const std::string&, bool) {
  last_error_ = "SocketCAN is only available on Linux";
  return false;
}
void SocketCanTransport::close() {}
bool SocketCanTransport::send(const can::CanFrame&) {
  ++stats_.send_failures;
  return false;
}
void SocketCanTransport::set_rx_callback(RxCallback callback) { rx_ = std::move(callback); }
std::size_t SocketCanTransport::pump(int) { return 0; }

#endif

}  // namespace acf::transport
