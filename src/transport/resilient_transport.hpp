// ResilientTransport: a decorator that keeps the fuzzing harness alive while
// the target (or the link to it) fails — the paper's endurance experiments
// run for hours against components that visibly degrade, so transient send
// failures (tx queue full, bus-off windows, ENOBUFS) must not kill the
// campaign.
//
// Two cooperating mechanisms:
//  - bounded retry with exponential backoff + jitter: a failed send is
//    queued and retried on the scheduler instead of being reported as lost;
//  - a circuit breaker: after N consecutive failed attempts the transport
//    stops hammering a dead link (fails fast), then half-opens on a timer
//    and probes with a single frame before closing again.
#pragma once

#include <cstdint>
#include <map>

#include "sim/scheduler.hpp"
#include "transport/transport.hpp"
#include "util/rng.hpp"

namespace acf::transport {

struct RetryPolicy {
  /// Total tries per frame, including the initial one.  1 = no retries.
  std::uint32_t max_attempts = 4;
  sim::Duration initial_backoff{std::chrono::microseconds(200)};
  double backoff_multiplier = 2.0;
  sim::Duration max_backoff{std::chrono::milliseconds(50)};
  /// Backoff is stretched by a uniform factor in [1, 1 + jitter] so retry
  /// storms from many senders decorrelate; deterministic in `jitter_seed`.
  double jitter = 0.25;
  /// Bound on frames awaiting retry; beyond it send() fails immediately.
  std::size_t max_pending = 64;
  std::uint64_t jitter_seed = 0x5e51;
};

struct CircuitBreakerPolicy {
  /// Consecutive failed attempts (across frames) that trip the breaker.
  std::uint32_t failure_threshold = 8;
  /// Time the breaker stays open before half-opening for a probe.
  sim::Duration open_duration{std::chrono::milliseconds(100)};
  /// Each re-trip from half-open stretches the next open window.
  double open_backoff_multiplier = 2.0;
  sim::Duration max_open_duration{std::chrono::seconds(5)};
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
const char* to_string(BreakerState state) noexcept;

struct ResilienceStats {
  std::uint64_t immediate_successes = 0;
  std::uint64_t retried_successes = 0;  // frames that needed >= 1 retry
  std::uint64_t retry_attempts = 0;
  std::uint64_t frames_abandoned = 0;   // retry budget exhausted
  std::uint64_t queue_rejections = 0;   // retry queue full
  std::uint64_t breaker_rejections = 0; // send refused while open
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_recoveries = 0; // half-open probe succeeded
};

class ResilientTransport final : public CanTransport {
 public:
  /// Wraps `inner`; both it and the scheduler must outlive this object.
  ResilientTransport(CanTransport& inner, sim::Scheduler& scheduler,
                     RetryPolicy retry = {}, CircuitBreakerPolicy breaker = {});
  ~ResilientTransport() override;

  ResilientTransport(const ResilientTransport&) = delete;
  ResilientTransport& operator=(const ResilientTransport&) = delete;

  /// Returns true when the frame was sent or queued for retry — "accepted
  /// for (eventual) delivery".  False only when the breaker is open or the
  /// retry queue is full, i.e. the link is known-dead right now.
  bool send(const can::CanFrame& frame) override;
  void set_rx_callback(RxCallback callback) override;
  std::string name() const override { return "resilient:" + inner_.name(); }
  const TransportStats& stats() const override { return stats_; }
  const can::ErrorState* bus_error_state() const override {
    return inner_.bus_error_state();
  }

  BreakerState breaker_state() const noexcept { return state_; }
  const ResilienceStats& resilience_stats() const noexcept { return resilience_; }
  std::size_t pending_retries() const noexcept { return pending_.size(); }
  /// Consecutive failed attempts since the last success.
  std::uint32_t consecutive_failures() const noexcept { return consecutive_failures_; }

 private:
  struct Pending {
    can::CanFrame frame;
    std::uint32_t attempts = 1;  // attempts already made
    sim::EventId event{};
  };

  bool attempt(const can::CanFrame& frame);
  void note_success() noexcept;
  void note_failure();
  sim::Duration backoff_for(std::uint32_t attempts_made);
  void schedule_retry(std::uint64_t ticket);
  void retry_tick(std::uint64_t ticket);
  void trip_breaker();
  void enter_half_open();

  CanTransport& inner_;
  sim::Scheduler& scheduler_;
  RetryPolicy retry_;
  CircuitBreakerPolicy breaker_;
  util::Rng jitter_rng_;

  TransportStats stats_;
  ResilienceStats resilience_;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_ticket_ = 1;
  BreakerState state_ = BreakerState::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  sim::Duration current_open_duration_{0};
  sim::EventId half_open_event_{};
};

}  // namespace acf::transport
