#include "transport/transport.hpp"

// Interface-only translation unit; anchors the vtable.
namespace acf::transport {}
