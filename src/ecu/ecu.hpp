// Ecu: base class for every simulated controller.
//
// Provides what the vehicle models need from their "hardware": a bus
// attachment, a periodic transmit schedule, power cycling, crash semantics
// (a crashed ECU goes silent until power-cycled — the observable the
// component-crash oracle keys on), a DTC store, and an optional UDS server
// endpoint over ISO-TP.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "ecu/dtc.hpp"
#include "isotp/isotp.hpp"
#include "sim/scheduler.hpp"
#include "uds/uds_server.hpp"

namespace acf::ecu {

class Ecu : protected can::BusListener {
 public:
  Ecu(sim::Scheduler& scheduler, can::VirtualBus& bus, std::string name);
  ~Ecu() override;

  Ecu(const Ecu&) = delete;
  Ecu& operator=(const Ecu&) = delete;

  const std::string& name() const noexcept { return name_; }
  bool powered() const noexcept { return powered_; }
  bool crashed() const noexcept { return crashed_; }
  const std::string& crash_reason() const noexcept { return crash_reason_; }
  std::uint32_t crash_count() const noexcept { return crash_count_; }

  void power_off();
  void power_on();
  /// Off for `off_time`, then back on (volatile state re-initialised).
  void power_cycle(sim::Duration off_time = std::chrono::milliseconds(100));

  DtcStore& dtcs() noexcept { return dtcs_; }
  const DtcStore& dtcs() const noexcept { return dtcs_; }

  /// UDS endpoint, if enabled by the subclass.
  uds::UdsServer* uds_server() noexcept { return uds_server_.get(); }

  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  can::VirtualBus& bus() noexcept { return bus_; }
  can::NodeId node_id() const noexcept { return node_; }

 protected:
  /// Registers a message transmitted every `period` while powered and not
  /// crashed.  `producer` may return nullopt to skip a cycle.
  void add_periodic(sim::Duration period,
                    std::function<std::optional<can::CanFrame>()> producer);

  /// Transmits immediately (event-driven messages).  No-op when powered off
  /// or crashed.
  bool send(const can::CanFrame& frame);

  /// Subclass receives every bus frame passing the node's filters.
  virtual void handle_frame(const can::CanFrame& frame, sim::SimTime time) = 0;

  /// Called after power-on so subclasses re-initialise volatile state.
  /// Crash latches stored in "non-volatile memory" deliberately survive.
  virtual void on_power_on() {}

  /// Enters the crashed state: all transmission and reception stops until a
  /// power cycle.  Models the firmware hang / corrupted state the paper
  /// produced in the real instrument cluster.
  void crash(std::string reason);

  /// Enables a UDS server on this ECU at the given request/response ids.
  void enable_uds(std::uint32_t request_id, std::uint32_t response_id,
                  uds::UdsServerConfig config = {});

 private:
  // can::BusListener
  void on_frame(const can::CanFrame& frame, sim::SimTime time) final;

  struct PeriodicEntry {
    sim::Duration period;
    std::function<std::optional<can::CanFrame>()> producer;
  };

  /// One scheduler event per distinct period; entries index periodics_ in
  /// registration order (see add_periodic).
  struct TickGroup {
    sim::Duration period;
    std::vector<std::size_t> entries;
  };

  sim::Scheduler& scheduler_;
  can::VirtualBus& bus_;
  std::string name_;
  can::NodeId node_;
  bool powered_ = true;
  bool crashed_ = false;
  std::string crash_reason_;
  std::uint32_t crash_count_ = 0;
  std::vector<PeriodicEntry> periodics_;
  std::vector<TickGroup> tick_groups_;
  DtcStore dtcs_;

  std::unique_ptr<uds::UdsServer> uds_server_;
  std::unique_ptr<isotp::IsoTpChannel> uds_channel_;
};

}  // namespace acf::ecu
