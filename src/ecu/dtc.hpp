// Diagnostic Trouble Code store: ECUs latch DTCs when they detect faults
// (implausible inputs, bus errors, internal crashes), the cluster lights the
// MIL from them, and UDS ReadDTCInformation reports them to a tester.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace acf::ecu {

/// UDS status bits (ISO 14229 D.2), subset we model.
inline constexpr std::uint8_t kDtcTestFailed = 0x01;
inline constexpr std::uint8_t kDtcConfirmed = 0x08;
inline constexpr std::uint8_t kDtcWarningIndicator = 0x80;

struct Dtc {
  std::uint32_t code = 0;  // 3-byte DTC number
  std::uint8_t status = 0;
  std::string description;
};

class DtcStore {
 public:
  /// Sets (or refreshes) a DTC.  `confirmed` DTCs request the MIL.
  void raise(std::uint32_t code, std::string description, bool confirmed = true);
  void clear_all() noexcept { dtcs_.clear(); }
  bool has(std::uint32_t code) const noexcept;

  std::size_t count() const noexcept { return dtcs_.size(); }
  const std::vector<Dtc>& all() const noexcept { return dtcs_; }

  /// True if any DTC requests the warning indicator (MIL).
  bool mil_requested() const noexcept;

  /// UDS ReadDTCInformation encoding: 3 code bytes + 1 status byte per DTC.
  std::vector<std::uint8_t> to_uds_bytes() const;

 private:
  std::vector<Dtc> dtcs_;
};

}  // namespace acf::ecu
