#include "ecu/ecu.hpp"

#include "util/log.hpp"

namespace acf::ecu {

Ecu::Ecu(sim::Scheduler& scheduler, can::VirtualBus& bus, std::string name)
    : scheduler_(scheduler), bus_(bus), name_(std::move(name)) {
  node_ = bus_.attach(*this, name_);
}

Ecu::~Ecu() { bus_.detach(node_); }

void Ecu::power_off() {
  if (!powered_) return;
  powered_ = false;
  bus_.set_power(node_, false);
}

void Ecu::power_on() {
  if (powered_) return;
  powered_ = true;
  bus_.set_power(node_, true);
  crashed_ = false;  // a power cycle recovers a crashed controller
  crash_reason_.clear();
  if (uds_server_) uds_server_->reset_state();
  on_power_on();
}

void Ecu::power_cycle(sim::Duration off_time) {
  power_off();
  scheduler_.schedule_after(off_time, [this] { power_on(); });
}

void Ecu::add_periodic(sim::Duration period,
                       std::function<std::optional<can::CanFrame>()> producer) {
  periodics_.push_back({period, std::move(producer)});
  const std::size_t index = periodics_.size() - 1;  // stable across reallocation
  // Messages sharing a period ride one scheduler event (tick group) instead
  // of one event each: an ECU with a dozen 100 ms messages costs the
  // scheduler one re-arm per cycle, not twelve.  Entries fire in
  // registration order, which is exactly the order the separate events would
  // have fired at a shared instant (FIFO seq tie-break), and arbitration
  // decides wire order anyway once all submissions are queued.
  for (std::size_t group = 0; group < tick_groups_.size(); ++group) {
    if (tick_groups_[group].period == period) {
      tick_groups_[group].entries.push_back(index);
      return;
    }
  }
  tick_groups_.push_back({period, {index}});
  const std::size_t group = tick_groups_.size() - 1;
  scheduler_.schedule_every(period, [this, group] {
    for (std::size_t entry : tick_groups_[group].entries) {
      // Re-checked per entry: a producer may crash or power down the ECU
      // mid-tick, which must silence the rest of the group this cycle.
      if (!powered_ || crashed_) return;
      if (const auto frame = periodics_[entry].producer()) bus_.submit(node_, *frame);
    }
  });
}

bool Ecu::send(const can::CanFrame& frame) {
  if (!powered_ || crashed_) return false;
  return bus_.submit(node_, frame);
}

void Ecu::crash(std::string reason) {
  if (crashed_) return;
  crashed_ = true;
  crash_reason_ = std::move(reason);
  ++crash_count_;
  bus_.flush_tx_queue(node_);
  ACF_LOG(kInfo, "ecu") << name_ << " crashed: " << crash_reason_;
}

void Ecu::enable_uds(std::uint32_t request_id, std::uint32_t response_id,
                     uds::UdsServerConfig config) {
  uds_server_ = std::make_unique<uds::UdsServer>(scheduler_, config);
  uds_server_->set_dtc_provider([this] { return dtcs_.to_uds_bytes(); });

  isotp::IsoTpConfig isotp_config;
  isotp_config.rx_id = request_id;
  isotp_config.tx_id = response_id;
  uds_channel_ = std::make_unique<isotp::IsoTpChannel>(
      scheduler_, [this](const can::CanFrame& frame) { return send(frame); }, isotp_config);
  uds_channel_->set_on_message(
      [this](const std::vector<std::uint8_t>& request, sim::SimTime) {
        uds_server_->handle_request(request, [this](std::vector<std::uint8_t> response) {
          uds_channel_->send(std::move(response));
        });
      });
}

void Ecu::on_frame(const can::CanFrame& frame, sim::SimTime time) {
  if (!powered_ || crashed_) return;
  if (uds_channel_) uds_channel_->handle_frame(frame, time);
  handle_frame(frame, time);
}

}  // namespace acf::ecu
