#include "ecu/dtc.hpp"

#include <algorithm>

namespace acf::ecu {

void DtcStore::raise(std::uint32_t code, std::string description, bool confirmed) {
  const std::uint8_t status = static_cast<std::uint8_t>(
      kDtcTestFailed | (confirmed ? (kDtcConfirmed | kDtcWarningIndicator) : 0));
  for (auto& dtc : dtcs_) {
    if (dtc.code == code) {
      dtc.status |= status;
      return;
    }
  }
  dtcs_.push_back(Dtc{code, status, std::move(description)});
}

bool DtcStore::has(std::uint32_t code) const noexcept {
  return std::any_of(dtcs_.begin(), dtcs_.end(),
                     [code](const Dtc& dtc) { return dtc.code == code; });
}

bool DtcStore::mil_requested() const noexcept {
  return std::any_of(dtcs_.begin(), dtcs_.end(), [](const Dtc& dtc) {
    return (dtc.status & kDtcWarningIndicator) != 0;
  });
}

std::vector<std::uint8_t> DtcStore::to_uds_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(dtcs_.size() * 4);
  for (const auto& dtc : dtcs_) {
    out.push_back(static_cast<std::uint8_t>((dtc.code >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((dtc.code >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(dtc.code & 0xFF));
    out.push_back(dtc.status);
  }
  return out;
}

}  // namespace acf::ecu
