#include "feedback/campaign.hpp"

#include <algorithm>
#include <map>

#include "oracle/vehicle_oracles.hpp"
#include "sim/scheduler.hpp"
#include "trace/capture.hpp"
#include "transport/virtual_bus_transport.hpp"
#include "vehicle/vehicle.hpp"

namespace acf::feedback {

namespace {

constexpr char kGeneratorName[] = "feedback";
constexpr std::uint64_t kStateVersion = 1;

/// True when `haystack` (sorted unique) contains every element of `needles`
/// (sorted unique) — the trim acceptance test.
bool covers(const std::vector<Feature>& haystack, const std::vector<Feature>& needles) {
  return std::includes(haystack.begin(), haystack.end(), needles.begin(), needles.end());
}

void pack_bytes(std::vector<std::uint64_t>& state, const std::vector<std::uint8_t>& bytes) {
  state.push_back(bytes.size());
  for (std::size_t i = 0; i < bytes.size(); i += 8) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 8 && i + j < bytes.size(); ++j) {
      word |= static_cast<std::uint64_t>(bytes[i + j]) << (8 * j);
    }
    state.push_back(word);
  }
}

}  // namespace

FeedbackCampaign::FeedbackCampaign(FeedbackConfig config)
    : config_(config), rng_(util::SplitMix64(config.seed).next()),
      mutator_(config.mutator), map_(config.map_cells) {}

void FeedbackCampaign::seed_corpus(const Corpus& corpus) {
  for (const Seed& seed : corpus.seeds()) {
    if (seed.frames.empty()) continue;
    Seed copy = seed;
    if (!corpus_.add(std::move(copy))) break;
    map_.observe_all(seed.features);
  }
}

FeedbackCampaign::ExecOutcome FeedbackCampaign::execute(
    const std::vector<can::CanFrame>& sequence) {
  ExecOutcome out;
  sim::Scheduler scheduler{256};
  vehicle::UnlockTestbench bench(scheduler, config_.predicate);
  transport::VirtualBusTransport attacker(bench.bus(), "attacker");
  trace::CaptureTap tap(bench.bus(), "feedback.tap");
  oracle::UnlockOracle unlock_oracle(bench.bus(), &bench.bcm());

  for (std::size_t i = 0; i < sequence.size(); ++i) {
    const can::CanFrame& frame = sequence[i];
    scheduler.schedule_at(sim::SimTime{config_.tx_period * (i + 1)}, [&, frame] {
      if (attacker.send(frame)) {
        ++out.frames_sent;
        coverage_.add(frame);
      } else {
        ++out.send_failures;
      }
    });
  }
  // Short, bounded window: the sends plus a settle margin for acks.  The
  // bench's 100 ms periodics never fire inside it, so the tap sees only the
  // injected traffic and its direct consequences.
  scheduler.run_for(config_.tx_period * (sequence.size() + 1) + config_.settle);
  out.elapsed = sim::Duration{scheduler.now()};

  const auto observation = unlock_oracle.poll(scheduler.now());
  if (observation && observation->verdict == oracle::Verdict::kFailure) {
    out.failure = true;
    out.failure_observation = *observation;
    coverage_.add_oracle_event();
  }

  // --- behaviour -> features ---------------------------------------------
  // (id, dlc) traffic cells with bucketed hit counts, from the tap.
  std::map<std::uint64_t, std::uint64_t> cells;
  for (const trace::TimestampedFrame& seen : tap.frames()) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(seen.frame.id()) << 8) | seen.frame.dlc();
    ++cells[key];
  }
  for (const auto& [key, count] : cells) {
    out.features.push_back(make_feature(Domain::kFrameCell, key, count));
  }
  // Simulator-internal ECU state: the counters a real bench hides.  Any
  // movement here marks the seed "hot" — it found the command channel.
  const auto ecu_state = [&](std::uint64_t key, std::uint64_t count) {
    if (count == 0) return;
    out.features.push_back(make_feature(Domain::kEcuState, key, count));
    out.hot = true;
  };
  ecu_state(1, bench.bcm().unlock_events());
  ecu_state(2, bench.bcm().lock_events());
  ecu_state(3, bench.bcm().rejected_commands());
  ecu_state(4, bench.bcm().unlocked() ? 1 : 0);
  // Oracle-domain observations (verdict level only — detail strings are
  // human-facing and must not fake novelty).
  if (unlock_oracle.ack_frames_seen() > 0) {
    out.features.push_back(make_feature(Domain::kOracle, 1, unlock_oracle.ack_frames_seen()));
    out.hot = true;
  }
  if (observation) {
    out.features.push_back(make_feature(
        Domain::kOracle, 2 + static_cast<std::uint64_t>(observation->verdict), 1));
    out.hot = true;
  }
  // Bus error excursions.
  const can::BusStats& bus = bench.bus().stats();
  const auto bus_error = [&](std::uint64_t key, std::uint64_t count) {
    if (count == 0) return;
    out.features.push_back(make_feature(Domain::kBusError, key, count));
  };
  bus_error(1, bus.error_frames);
  bus_error(2, bus.drops_bus_off);
  bus_error(3, bus.drops_queue_full);
  bus_error(4, bus.arbitration_contests);

  std::sort(out.features.begin(), out.features.end());
  out.features.erase(std::unique(out.features.begin(), out.features.end()),
                     out.features.end());
  return out;
}

void FeedbackCampaign::record_failure(const std::vector<can::CanFrame>& sequence,
                                      const ExecOutcome& outcome) {
  fuzzer::Finding finding;
  finding.observation = outcome.failure_observation;
  // Within-execution instant -> cumulative campaign time, so means and CIs
  // over time-to-failure compare directly against a blind campaign.
  finding.observation.time = sim::SimTime{total_sim_ + outcome.failure_observation.time};
  // The triggering sequence makes the finding's signature distinct across
  // trials (the bench deduplicates on it).
  finding.observation.detail += " via";
  for (const can::CanFrame& frame : sequence) {
    finding.observation.detail += ' ';
    finding.observation.detail += frame.to_string();
  }
  finding.frames_sent = result_.frames_sent + outcome.frames_sent;
  finding.recent_frames.reserve(sequence.size());
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    finding.recent_frames.push_back(
        {sequence[i], sim::SimTime{total_sim_ + config_.tx_period * (i + 1)}});
  }
  finding.generator = kGeneratorName;
  finding.seed = config_.seed;
  result_.findings.push_back(std::move(finding));
  if (config_.stop_on_failure) {
    result_.reason = fuzzer::StopReason::kFailureDetected;
    finished_ = true;
  }
}

void FeedbackCampaign::trim_seed(std::vector<can::CanFrame>& sequence,
                                 ExecOutcome& outcome) {
  // AFL-tmin, honestly costed: every candidate replay is a full execution
  // that burns simulated budget and counts in the stats.  The acceptance
  // test is "the trimmed sequence still produces every feature that made
  // the original novel" — tracked via `outcome.features` superset checks
  // against the fresh subset the caller computed before observing.
  std::vector<Feature> must_keep;
  for (const Feature f : outcome.features) {
    if (!map_.seen(f)) must_keep.push_back(f);  // caller has not observed yet
  }
  std::uint32_t budget = config_.trim_budget;
  for (std::size_t chunk = sequence.size() / 2; chunk >= 1 && budget > 0; chunk /= 2) {
    std::size_t pos = 0;
    while (pos + chunk <= sequence.size() && sequence.size() > chunk && budget > 0 &&
           !finished_) {
      std::vector<can::CanFrame> candidate;
      candidate.reserve(sequence.size() - chunk);
      candidate.insert(candidate.end(), sequence.begin(),
                       sequence.begin() + static_cast<std::ptrdiff_t>(pos));
      candidate.insert(candidate.end(),
                       sequence.begin() + static_cast<std::ptrdiff_t>(pos + chunk),
                       sequence.end());
      ExecOutcome trial = execute(candidate);
      --budget;
      ++stats_.trim_executions;
      if (trial.failure) record_failure(candidate, trial);
      total_sim_ += trial.elapsed;
      result_.frames_sent += trial.frames_sent;
      result_.send_failures += trial.send_failures;
      stats_.frames_sent += trial.frames_sent;
      ++stats_.executions;
      if (covers(trial.features, must_keep)) {
        sequence = std::move(candidate);
        outcome = std::move(trial);  // the seed's recorded behaviour is the trimmed run's
      } else {
        pos += chunk;
      }
    }
    if (finished_) break;
  }
}

bool FeedbackCampaign::budget_exhausted() const noexcept {
  if (total_sim_ >= config_.max_total_sim) return true;
  return config_.max_executions != 0 && stats_.executions >= config_.max_executions;
}

const fuzzer::CampaignResult& FeedbackCampaign::run() {
  while (!finished_) {
    if (budget_exhausted()) {
      // Not a terminal state: a checkpoint taken here restores into a
      // campaign whose config may carry a larger budget and continues.
      result_.reason = total_sim_ >= config_.max_total_sim
                           ? fuzzer::StopReason::kDurationElapsed
                           : fuzzer::StopReason::kFrameLimit;
      break;
    }
    // --- pick ------------------------------------------------------------
    std::vector<can::CanFrame> sequence;
    if (corpus_.empty() ||
        (config_.fresh_one_in != 0 && rng_.next_below(config_.fresh_one_in) == 0)) {
      sequence = mutator_.fresh(rng_);
    } else {
      const std::size_t index = corpus_.pick(rng_);
      sequence = corpus_.at(index).frames;
      const std::vector<can::CanFrame>* donor = nullptr;
      if (corpus_.size() >= 2 && rng_.next_bool()) {
        const std::size_t donor_index = corpus_.pick(rng_);
        if (donor_index != index) donor = &corpus_.at(donor_index).frames;
      }
      mutator_.mutate(rng_, sequence, donor);
    }
    // --- run -------------------------------------------------------------
    ExecOutcome outcome = execute(sequence);
    std::vector<Feature> fresh;
    for (const Feature f : outcome.features) {
      if (!map_.seen(f)) fresh.push_back(f);
    }
    if (outcome.failure) record_failure(sequence, outcome);
    total_sim_ += outcome.elapsed;
    result_.frames_sent += outcome.frames_sent;
    result_.send_failures += outcome.send_failures;
    stats_.frames_sent += outcome.frames_sent;
    ++stats_.executions;
    // --- keep if novel ---------------------------------------------------
    if (!fresh.empty()) {
      ++stats_.novel_inputs;
      if (config_.trim && sequence.size() > 1 && !finished_) {
        trim_seed(sequence, outcome);
      }
      map_.observe_all(outcome.features);
      Seed seed;
      seed.frames = std::move(sequence);
      seed.features = std::move(outcome.features);
      seed.hot = outcome.hot;
      seed.found_at_exec = stats_.executions;
      seed.exec_cost_ns = static_cast<std::uint64_t>(outcome.elapsed.count());
      if (corpus_.add(std::move(seed))) {
        if (++additions_since_minimize_ >= config_.minimize_interval) {
          stats_.seeds_dropped += corpus_.minimize();
          additions_since_minimize_ = 0;
        }
      }
    }
  }
  result_.elapsed = total_sim_;
  return result_;
}

fuzzer::CampaignCheckpoint FeedbackCampaign::checkpoint() const {
  fuzzer::CampaignCheckpoint cp;
  cp.frames_sent = result_.frames_sent;
  cp.send_failures = result_.send_failures;
  cp.elapsed = total_sim_;
  cp.generator_name = kGeneratorName;
  cp.findings = result_.findings;

  std::vector<std::uint64_t>& state = cp.generator_state;
  state.push_back(kStateVersion);
  for (const std::uint64_t word : rng_.state()) state.push_back(word);
  state.push_back(stats_.executions);
  state.push_back(stats_.novel_inputs);
  state.push_back(stats_.trim_executions);
  state.push_back(stats_.seeds_dropped);
  state.push_back(stats_.frames_sent);
  state.push_back(additions_since_minimize_);
  state.push_back(finished_ ? 1 : 0);
  state.push_back(static_cast<std::uint64_t>(result_.reason));
  const auto words = map_.words();
  state.push_back(words.size());
  state.insert(state.end(), words.begin(), words.end());
  pack_bytes(state, corpus_.encode());
  return cp;
}

bool FeedbackCampaign::restore(const fuzzer::CampaignCheckpoint& checkpoint) {
  if (checkpoint.generator_name != kGeneratorName) return false;
  const std::vector<std::uint64_t>& state = checkpoint.generator_state;
  std::size_t pos = 0;
  const auto next = [&](std::uint64_t& out) {
    if (pos >= state.size()) return false;
    out = state[pos++];
    return true;
  };
  std::uint64_t version = 0;
  if (!next(version) || version != kStateVersion) return false;
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) {
    if (!next(word)) return false;
  }
  FeedbackStats stats;
  std::uint64_t additions = 0, finished = 0, reason = 0;
  if (!next(stats.executions) || !next(stats.novel_inputs) ||
      !next(stats.trim_executions) || !next(stats.seeds_dropped) ||
      !next(stats.frames_sent) || !next(additions) || !next(finished) || !next(reason)) {
    return false;
  }
  std::uint64_t word_count = 0;
  if (!next(word_count) || word_count > state.size() - pos) return false;
  const std::span<const std::uint64_t> map_words(state.data() + pos,
                                                 static_cast<std::size_t>(word_count));
  pos += static_cast<std::size_t>(word_count);
  std::uint64_t byte_count = 0;
  if (!next(byte_count) || byte_count > 8 * (state.size() - pos)) return false;
  const std::size_t packed_words = (static_cast<std::size_t>(byte_count) + 7) / 8;
  if (pos + packed_words != state.size()) return false;
  std::vector<std::uint8_t> corpus_bytes;
  corpus_bytes.reserve(static_cast<std::size_t>(byte_count));
  for (std::size_t i = 0; i < byte_count; ++i) {
    corpus_bytes.push_back(
        static_cast<std::uint8_t>(state[pos + i / 8] >> (8 * (i % 8))));
  }
  auto corpus = Corpus::decode(corpus_bytes);
  if (!corpus) return false;

  NoveltyMap map(config_.map_cells);
  if (!map.restore_words(map_words)) return false;

  // All parsed and validated; commit.
  rng_.set_state(rng_state);
  stats_ = stats;
  additions_since_minimize_ = static_cast<std::uint32_t>(additions);
  finished_ = finished != 0;
  map_ = std::move(map);
  corpus_ = std::move(*corpus);
  total_sim_ = checkpoint.elapsed;
  result_.frames_sent = checkpoint.frames_sent;
  result_.send_failures = checkpoint.send_failures;
  result_.findings = checkpoint.findings;
  result_.elapsed = total_sim_;
  result_.reason = finished_ ? static_cast<fuzzer::StopReason>(reason)
                             : fuzzer::StopReason::kStillRunning;
  return true;
}

}  // namespace acf::feedback
