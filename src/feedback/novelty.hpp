// NoveltyMap: the coverage signal that closes the fuzzing loop.
//
// The paper's §III-B4 challenge is that CPS fuzzing has no instrumentation
// to guide it — the target is a black box and "the final count of bugs
// found ... can only be relative to other runs".  The simulator changes
// that: every trial world exposes behavioural state a real bench hides
// (ECU counters, oracle verdicts, bus error excursions, the traffic the
// tap records).  This module turns those observations into an AFL-style
// coverage signal: each observation becomes a 64-bit *feature* hashing
// (domain, key, bucketed count), and the map remembers which feature cells
// have ever been hit.  An input is novel exactly when it hits a cell no
// earlier input hit — the "keep if it reached somewhere new" test of
// coverage-guided fuzzing, built from simulation behaviour instead of
// branch instrumentation.
//
// Hit counts are bucketed into AFL's power-of-two classes before hashing,
// so "rejected 1 command" and "rejected 9 commands" are different cells
// (a gradient the mutator can climb) while "9" and "10" are not (no
// unbounded cell growth).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace acf::feedback {

/// Where a feature was observed.  Part of the feature hash, so the same
/// numeric key in two domains never collides by construction (only by hash).
enum class Domain : std::uint8_t {
  kFrameCell = 1,  // (id, dlc) traffic cell seen by the capture tap
  kEcuState = 2,   // simulator-internal ECU counters (unlocks, rejections)
  kOracle = 3,     // oracle verdicts and ack observations
  kBusError = 4,   // bus error-state excursions (error frames, drops)
  kIdsAlert = 5,   // IDS alert novelty (worlds that mount a detector)
};

using Feature = std::uint64_t;

/// AFL hit-count classes: 1,2,3,4-7,8-15,16-31,32-127,128+ -> 0..7.
/// count == 0 maps to bucket 0 too; callers skip zero counts.
std::uint8_t count_bucket(std::uint64_t count) noexcept;

/// FNV-1a over (domain, key, count_bucket(count)).  Deterministic across
/// platforms; the bucket is embedded in the hash so the map itself stays a
/// plain bitmap.
Feature make_feature(Domain domain, std::uint64_t key, std::uint64_t count) noexcept;

/// Fixed-size hit bitmap over hashed feature cells.  A cell, once hit,
/// stays hit for the campaign's lifetime; novelty is "first hit".
class NoveltyMap {
 public:
  static constexpr std::size_t kDefaultCells = std::size_t{1} << 16;

  /// `cells` is rounded up to a power of two (minimum 64).
  explicit NoveltyMap(std::size_t cells = kDefaultCells);

  /// Marks the feature's cell; returns true if the cell was previously
  /// unhit (the input just reached somewhere new).
  bool observe(Feature feature) noexcept;

  /// Observes every feature; returns how many hit fresh cells.
  std::size_t observe_all(std::span<const Feature> features) noexcept;

  /// True if the feature's cell is already hit (no state change).
  bool seen(Feature feature) const noexcept;

  std::size_t cells() const noexcept { return words_.size() * 64; }
  std::size_t occupied() const noexcept { return occupied_; }
  /// Fraction of cells hit — the AFL "map density" health metric.
  double density() const noexcept;

  void reset() noexcept;

  /// Raw bitmap words, for checkpointing.  restore_words re-derives the
  /// occupied count; it rejects (returns false) a word count that does not
  /// match this map's size.
  std::span<const std::uint64_t> words() const noexcept { return words_; }
  bool restore_words(std::span<const std::uint64_t> words) noexcept;

 private:
  std::size_t cell_of(Feature feature) const noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t mask_ = 0;  // cells - 1 (cells is a power of two)
  std::size_t occupied_ = 0;
};

}  // namespace acf::feedback
