// Seed corpus for feedback-driven campaigns.
//
// A seed is a short frame *sequence* (the unit the feedback loop replays
// and mutates — single frames cannot express stateful attacks like
// lock-then-unlock), together with the full sorted-unique feature list its
// discovery execution produced.  The corpus supports the three operations
// the loop needs:
//
//  * energy-based scheduling — pick() draws seeds weighted by an energy
//    score, so seeds that touched ECU state or an oracle (the domains
//    closest to a security finding) are mutated far more often than seeds
//    that merely produced new traffic cells;
//  * minimisation — a greedy set cover over the feature lists drops seeds
//    whose entire coverage is subsumed by others, bounding corpus growth;
//  * a versioned on-disk format — magic + version, every count bounded and
//    validated BEFORE allocation, strict full consumption, canonical
//    encoding so decode∘encode is the identity on everything accepted
//    (the same hardened byte-reader discipline as the fleet wire protocol,
//    DESIGN.md §13; the `corpus_file` self-fuzz target hammers it).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "can/frame.hpp"
#include "feedback/novelty.hpp"
#include "util/rng.hpp"

namespace acf::feedback {

/// Bounds enforced by the decoder before any allocation.
inline constexpr std::size_t kMaxCorpusSeeds = 4096;
inline constexpr std::size_t kMaxSeedFrames = 512;
inline constexpr std::size_t kMaxSeedFeatures = 8192;
inline constexpr std::uint32_t kCorpusMagic = 0x41434643;  // "ACFC"
inline constexpr std::uint32_t kCorpusVersion = 1;

struct Seed {
  std::vector<can::CanFrame> frames;
  /// Full sorted-unique feature list of the execution that earned this seed
  /// its place (minimisation runs set cover over these).
  std::vector<Feature> features;
  /// True when the discovery execution touched the ECU-state or oracle
  /// domains — the seeds worth most of the mutation budget.
  bool hot = false;
  /// Execution index (within its campaign) at which the seed was found.
  std::uint64_t found_at_exec = 0;
  /// Simulated cost of one replay, for budget accounting.
  std::uint64_t exec_cost_ns = 0;
};

class Corpus {
 public:
  std::size_t size() const noexcept { return seeds_.size(); }
  bool empty() const noexcept { return seeds_.empty(); }
  const Seed& at(std::size_t i) const { return seeds_.at(i); }
  const std::vector<Seed>& seeds() const noexcept { return seeds_; }

  /// Appends a seed (features are sorted + deduped in place).  Returns
  /// false (seed dropped) once the corpus is at kMaxCorpusSeeds.
  bool add(Seed seed);

  /// Energy of seed `i`: hot seeds get a large multiplier, everything else
  /// baseline.  Integer weights keep the weighted draw exactly
  /// reproducible.
  std::uint64_t energy(std::size_t i) const;

  /// Energy-weighted seed index draw.  Corpus must be non-empty.
  std::size_t pick(util::Rng& rng) const;

  /// Greedy set cover over the feature lists: keeps seeds in order of
  /// (uncovered features contributed, then insertion order) until the full
  /// feature union is covered, drops the rest.  Returns seeds dropped.
  /// The union of covered features is invariant under minimisation.
  std::size_t minimize();

  /// Union size of all feature lists (diagnostic).
  std::size_t distinct_features() const;

  // --- on-disk format -----------------------------------------------------
  std::vector<std::uint8_t> encode() const;
  static std::optional<Corpus> decode(std::span<const std::uint8_t> bytes);
  bool save(const std::string& path) const;
  static std::optional<Corpus> load(const std::string& path);

 private:
  std::vector<Seed> seeds_;
};

}  // namespace acf::feedback
