#include "feedback/sequence_mutator.hpp"

#include <algorithm>

#include "dbc/target_vehicle_db.hpp"
#include "fuzzer/mutation_core.hpp"
#include "fuzzer/mutator.hpp"

namespace acf::feedback {

namespace {

/// Protocol constants blind byte mutation rarely lands on: the body command
/// codes (0x10/0x20), the 0x5F/0x01 prefix bytes of the legitimate command
/// frame, and the usual boundary values.
constexpr std::uint8_t kInterestingBytes[] = {0x00, 0x01, 0x10, 0x20, 0x40,
                                              0x5F, 0x7F, 0x80, 0xFF};

std::vector<std::uint8_t> payload_of(const can::CanFrame& frame) {
  return {frame.payload().begin(), frame.payload().end()};
}

can::CanFrame rebuild(const can::CanFrame& frame, std::uint32_t id,
                      std::span<const std::uint8_t> payload) {
  return can::CanFrame::data(id, payload, frame.format()).value_or(frame);
}

}  // namespace

SequenceMutator::SequenceMutator(SequenceMutatorConfig config,
                                 std::vector<std::uint32_t> id_dictionary)
    : config_(config), ids_(std::move(id_dictionary)) {
  if (config_.max_frames == 0) config_.max_frames = 1;
  if (ids_.empty()) ids_ = target_vehicle_ids();
}

std::vector<std::uint32_t> SequenceMutator::target_vehicle_ids() {
  return {dbc::kMsgEngineData,   dbc::kMsgVehicleSpeed,  dbc::kMsgWheelSpeeds,
          dbc::kMsgPowertrainStatus, dbc::kMsgClusterDisplay, dbc::kMsgTelltales,
          dbc::kMsgBodyCommand,  dbc::kMsgBodyAck,       dbc::kMsgDoorStatus,
          dbc::kUdsEngineRequest, dbc::kUdsClusterRequest, dbc::kUdsBcmRequest};
}

can::CanFrame SequenceMutator::random_frame(util::Rng& rng) const {
  const auto id = static_cast<std::uint32_t>(rng.next_below(can::kMaxStandardId + 1));
  const auto len = static_cast<std::size_t>(rng.next_below(can::kMaxClassicPayload + 1));
  std::array<std::uint8_t, can::kMaxClassicPayload> payload{};
  rng.fill(std::span(payload.data(), len));
  return can::CanFrame::data(id, std::span(payload.data(), len)).value_or(can::CanFrame{});
}

std::vector<can::CanFrame> SequenceMutator::fresh(util::Rng& rng) const {
  const std::size_t count =
      std::min<std::size_t>(1 + rng.next_below(4), config_.max_frames);
  std::vector<can::CanFrame> sequence;
  sequence.reserve(count);
  for (std::size_t i = 0; i < count; ++i) sequence.push_back(random_frame(rng));
  return sequence;
}

// Operator table (frozen order — the Rng stream is part of the determinism
// contract, like mutcore::mutate_once's):
//   0 payload bit flip      1 payload byte overwrite  2 interesting byte
//   3 id dictionary snap    4 id jitter               5 payload resize
//   6 duplicate frame       7 erase frame             8 splice from donor
void SequenceMutator::mutate_once(util::Rng& rng, std::vector<can::CanFrame>& sequence,
                                  const std::vector<can::CanFrame>* donor) const {
  const std::uint64_t op = rng.next_below(9);
  const std::size_t at = static_cast<std::size_t>(rng.next_below(sequence.size()));
  can::CanFrame& frame = sequence[at];
  switch (op) {
    case 0: {
      auto bytes = payload_of(frame);
      fuzzer::mutcore::flip_bit(rng, bytes);
      frame = rebuild(frame, frame.id(), bytes);
      break;
    }
    case 1: {
      auto bytes = payload_of(frame);
      fuzzer::mutcore::overwrite_byte(rng, bytes);
      frame = rebuild(frame, frame.id(), bytes);
      break;
    }
    case 2: {
      auto bytes = payload_of(frame);
      if (!bytes.empty()) {
        const auto pos = static_cast<std::size_t>(rng.next_below(bytes.size()));
        bytes[pos] = kInterestingBytes[rng.next_below(sizeof kInterestingBytes)];
        frame = rebuild(frame, frame.id(), bytes);
      }
      break;
    }
    case 3: {
      const std::uint32_t id = ids_[static_cast<std::size_t>(rng.next_below(ids_.size()))];
      frame = rebuild(frame, id, frame.payload());
      break;
    }
    case 4:
      frame = fuzzer::mutations::jitter_id(frame, rng, config_.id_jitter_radius);
      break;
    case 5: {
      auto bytes = payload_of(frame);
      const auto new_len =
          static_cast<std::size_t>(rng.next_below(can::kMaxClassicPayload + 1));
      while (bytes.size() < new_len) bytes.push_back(rng.next_byte());
      bytes.resize(new_len);
      frame = rebuild(frame, frame.id(), bytes);
      break;
    }
    case 6:
      if (sequence.size() < config_.max_frames) {
        sequence.insert(sequence.begin() + static_cast<std::ptrdiff_t>(at), sequence[at]);
      }
      break;
    case 7:
      if (sequence.size() > 1) {
        sequence.erase(sequence.begin() + static_cast<std::ptrdiff_t>(at));
      }
      break;
    default: {
      if (donor != nullptr && !donor->empty()) {
        // Keep a prefix of this sequence, graft a suffix of the donor.
        const auto keep = static_cast<std::size_t>(rng.next_below(sequence.size() + 1));
        const auto from = static_cast<std::size_t>(rng.next_below(donor->size()));
        sequence.resize(keep);
        sequence.insert(sequence.end(), donor->begin() + static_cast<std::ptrdiff_t>(from),
                        donor->end());
        if (sequence.size() > config_.max_frames) sequence.resize(config_.max_frames);
      } else {
        if (sequence.size() < config_.max_frames) {
          sequence.push_back(random_frame(rng));
        }
      }
      break;
    }
  }
}

void SequenceMutator::mutate(util::Rng& rng, std::vector<can::CanFrame>& sequence,
                             const std::vector<can::CanFrame>* donor) const {
  if (sequence.empty()) sequence.push_back(random_frame(rng));
  if (sequence.size() > config_.max_frames) sequence.resize(config_.max_frames);
  const std::uint64_t rounds = 1 + rng.next_below(4);
  for (std::uint64_t i = 0; i < rounds; ++i) mutate_once(rng, sequence, donor);
}

}  // namespace acf::feedback
