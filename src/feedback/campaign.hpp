// FeedbackCampaign: the coverage-guided loop — pick a seed by energy,
// mutate it, run it against a fresh isolated world, keep it if it reached
// novel behaviour.  The AFL recipe, with the NoveltyMap standing in for
// branch coverage (DESIGN.md §16).
//
// Each *execution* builds its own discrete-event world (scheduler, unlock
// testbench, attacker transport, capture tap, unlock oracle), replays one
// frame sequence at the configured tx period, and tears the world down —
// so executions are perfectly isolated and the whole campaign is a pure
// function of its 64-bit seed.  Simulated time is accounted honestly:
// every execution (including AFL-tmin style seed trimming) adds its
// scheduler time to the campaign's elapsed total, which is what the
// feedback-vs-random bench compares.
//
// The campaign speaks the same interfaces as the blind FuzzCampaign: it
// returns a fuzzer::CampaignResult, and its state checkpoints through
// fuzzer::CampaignCheckpoint (corpus + novelty map + RNG packed into
// generator_state), so it rides the fleet's trial/checkpoint machinery and
// runs in-process or distributed unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "feedback/corpus.hpp"
#include "feedback/novelty.hpp"
#include "feedback/sequence_mutator.hpp"
#include "fuzzer/campaign.hpp"
#include "fuzzer/checkpoint.hpp"
#include "fuzzer/coverage.hpp"
#include "vehicle/body_control.hpp"

namespace acf::feedback {

struct FeedbackConfig {
  /// Campaign seed; the whole run is a pure function of it.
  std::uint64_t seed = 0xFEED;
  /// Total simulated-time budget across all executions (the comparable
  /// quantity against a blind campaign's max_duration).
  sim::Duration max_total_sim{std::chrono::seconds(600)};
  /// Stop after this many executions (0 = unlimited; budget still applies).
  std::uint64_t max_executions = 0;
  /// Frame transmission period within an execution.
  sim::Duration tx_period{std::chrono::milliseconds(1)};
  /// Extra simulated time after the last frame, for acks to land.
  sim::Duration settle{std::chrono::milliseconds(2)};
  /// Stop at the first failure-verdict observation.
  bool stop_on_failure = true;
  /// Novelty map size (cells; rounded up to a power of two).
  std::size_t map_cells = NoveltyMap::kDefaultCells;
  /// AFL-tmin style seed trimming: when a novel seed is kept, try removing
  /// chunks of it (re-executing each candidate, cost counted) so the corpus
  /// stays short.  Bounded by trim_budget executions per seed.
  bool trim = true;
  std::uint32_t trim_budget = 12;
  /// Corpus minimisation (greedy set cover) runs after this many additions.
  std::uint32_t minimize_interval = 32;
  /// Chance (1 in N) of a fresh random sequence instead of mutating a
  /// corpus seed, keeping exploration alive.
  std::uint32_t fresh_one_in = 16;
  SequenceMutatorConfig mutator;
  /// The unlock predicate guarding the testbench's BCM.
  vehicle::UnlockPredicate predicate = vehicle::UnlockPredicate::single_id_and_byte();
};

struct FeedbackStats {
  std::uint64_t executions = 0;
  std::uint64_t novel_inputs = 0;   // executions that hit a fresh map cell
  std::uint64_t trim_executions = 0;
  std::uint64_t seeds_dropped = 0;  // by corpus minimisation
  std::uint64_t frames_sent = 0;
};

class FeedbackCampaign {
 public:
  explicit FeedbackCampaign(FeedbackConfig config);

  /// Pre-populates the corpus (e.g. from a --corpus-dir seed file) before
  /// run(); every seed's features are folded into the novelty map.
  void seed_corpus(const Corpus& corpus);

  /// Drives the loop until budget, execution limit or (stop_on_failure)
  /// the first failure.  Resumable: after restore(), continues where the
  /// checkpointed campaign left off.
  const fuzzer::CampaignResult& run();

  const fuzzer::CampaignResult& result() const noexcept { return result_; }
  const Corpus& corpus() const noexcept { return corpus_; }
  const NoveltyMap& map() const noexcept { return map_; }
  const FeedbackStats& stats() const noexcept { return stats_; }
  const fuzzer::CoverageTracker& coverage() const noexcept { return coverage_; }
  const FeedbackConfig& config() const noexcept { return config_; }

  /// Packs the loop state (RNG, counters, novelty map, corpus bytes) into a
  /// standard campaign checkpoint with generator_name "feedback" — the
  /// corpus rides the same hardened v2 checkpoint path as every other
  /// campaign (PR-5/PR-6).
  fuzzer::CampaignCheckpoint checkpoint() const;

  /// Restores loop state.  Returns false (campaign untouched) on a
  /// generator mismatch or malformed state.  A restored campaign continues
  /// byte-identically to the uninterrupted run.
  bool restore(const fuzzer::CampaignCheckpoint& checkpoint);

 private:
  struct ExecOutcome {
    std::vector<Feature> features;  // sorted unique
    bool hot = false;               // touched ECU-state / oracle domains
    sim::Duration elapsed{0};
    std::uint64_t frames_sent = 0;
    std::uint64_t send_failures = 0;
    bool failure = false;
    oracle::Observation failure_observation;  // valid when failure
  };

  ExecOutcome execute(const std::vector<can::CanFrame>& sequence);
  void record_failure(const std::vector<can::CanFrame>& sequence,
                      const ExecOutcome& outcome);
  void trim_seed(std::vector<can::CanFrame>& sequence, ExecOutcome& outcome);
  bool budget_exhausted() const noexcept;

  FeedbackConfig config_;
  util::Rng rng_;
  SequenceMutator mutator_;
  NoveltyMap map_;
  Corpus corpus_;
  FeedbackStats stats_;
  fuzzer::CoverageTracker coverage_;
  fuzzer::CampaignResult result_;
  sim::Duration total_sim_{0};
  std::uint32_t additions_since_minimize_ = 0;
  bool finished_ = false;
};

}  // namespace acf::feedback
