#include "feedback/novelty.hpp"

#include <bit>

namespace acf::feedback {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a_u64(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::uint8_t count_bucket(std::uint64_t count) noexcept {
  if (count <= 3) return static_cast<std::uint8_t>(count == 0 ? 0 : count - 1);
  if (count <= 7) return 3;
  if (count <= 15) return 4;
  if (count <= 31) return 5;
  if (count <= 127) return 6;
  return 7;
}

Feature make_feature(Domain domain, std::uint64_t key, std::uint64_t count) noexcept {
  std::uint64_t hash = kFnvOffset;
  hash ^= static_cast<std::uint64_t>(domain);
  hash *= kFnvPrime;
  hash = fnv1a_u64(hash, key);
  hash ^= count_bucket(count);
  hash *= kFnvPrime;
  return hash;
}

NoveltyMap::NoveltyMap(std::size_t cells) {
  if (cells < 64) cells = 64;
  cells = std::bit_ceil(cells);
  words_.assign(cells / 64, 0);
  mask_ = cells - 1;
}

std::size_t NoveltyMap::cell_of(Feature feature) const noexcept {
  // Fold the high bits in so small maps still use the whole hash.
  return static_cast<std::size_t>((feature ^ (feature >> 32)) & mask_);
}

bool NoveltyMap::observe(Feature feature) noexcept {
  const std::size_t cell = cell_of(feature);
  std::uint64_t& word = words_[cell / 64];
  const std::uint64_t bit = std::uint64_t{1} << (cell % 64);
  if ((word & bit) != 0) return false;
  word |= bit;
  ++occupied_;
  return true;
}

std::size_t NoveltyMap::observe_all(std::span<const Feature> features) noexcept {
  std::size_t fresh = 0;
  for (const Feature feature : features) {
    if (observe(feature)) ++fresh;
  }
  return fresh;
}

bool NoveltyMap::seen(Feature feature) const noexcept {
  const std::size_t cell = cell_of(feature);
  return (words_[cell / 64] >> (cell % 64)) & 1;
}

double NoveltyMap::density() const noexcept {
  const std::size_t total = cells();
  return total == 0 ? 0.0 : static_cast<double>(occupied_) / static_cast<double>(total);
}

void NoveltyMap::reset() noexcept {
  for (std::uint64_t& word : words_) word = 0;
  occupied_ = 0;
}

bool NoveltyMap::restore_words(std::span<const std::uint64_t> words) noexcept {
  if (words.size() != words_.size()) return false;
  occupied_ = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = words[i];
    occupied_ += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return true;
}

}  // namespace acf::feedback
