// SequenceMutator: lifts the shared byte-mutation core from raw byte
// buffers to CAN frame *sequences* — the input unit of the feedback loop.
//
// Havoc-style: each mutate() applies a stack of 1..4 operators drawn from a
// frozen table.  Three layers of operator:
//  * per-frame byte mutations (bit flips / byte overwrites via
//    fuzzer::mutcore, plus an interesting-byte table of protocol
//    constants — command codes, the 0x5F prefix, boundary values);
//  * id/dlc-aware ops driven by the signal-database dictionary (snap a
//    frame's id onto a real message id, jitter it nearby, resize the
//    payload across DLC boundaries);
//  * sequence ops (duplicate / drop / insert frames, and splice — AFL's
//    crossover — grafting the tail of a donor seed onto a prefix).
//
// Same determinism contract as the rest of the fuzzer: every operator
// consumes Rng draws in a frozen order, so a mutated sequence is a pure
// function of (rng state, input, donor).
#pragma once

#include <cstdint>
#include <vector>

#include "can/frame.hpp"
#include "util/rng.hpp"

namespace acf::feedback {

struct SequenceMutatorConfig {
  /// Hard cap on frames per sequence; keeps per-execution simulated cost
  /// (and therefore the time-to-finding denominator) small.
  std::size_t max_frames = 16;
  /// Radius for the id-jitter operator.
  std::uint32_t id_jitter_radius = 16;
};

class SequenceMutator {
 public:
  /// `id_dictionary` seeds the id-snap operator; empty falls back to the
  /// target vehicle's message ids.
  explicit SequenceMutator(SequenceMutatorConfig config = {},
                           std::vector<std::uint32_t> id_dictionary = {});

  /// The target vehicle's message ids (dbc/target_vehicle_db.hpp) — the
  /// default dictionary.
  static std::vector<std::uint32_t> target_vehicle_ids();

  /// Applies 1..4 havoc rounds in place.  `donor` (may be null) supplies
  /// splice material; the result never exceeds max_frames and never
  /// becomes empty.
  void mutate(util::Rng& rng, std::vector<can::CanFrame>& sequence,
              const std::vector<can::CanFrame>* donor) const;

  /// Fresh random sequence of 1..4 frames.
  std::vector<can::CanFrame> fresh(util::Rng& rng) const;

  const SequenceMutatorConfig& config() const noexcept { return config_; }

 private:
  can::CanFrame random_frame(util::Rng& rng) const;
  void mutate_once(util::Rng& rng, std::vector<can::CanFrame>& sequence,
                   const std::vector<can::CanFrame>* donor) const;

  SequenceMutatorConfig config_;
  std::vector<std::uint32_t> ids_;
};

}  // namespace acf::feedback
