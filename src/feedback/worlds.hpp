// Feedback fleet worlds: one fleet trial = one complete, isolated
// feedback-driven campaign.  Because a FeedbackCampaign is a pure function
// of its seed, packaging it as a fleet::World buys in-process and
// distributed execution — and byte-identical outcomes at any thread
// count — from the existing trial machinery for free.
#pragma once

#include <string>
#include <vector>

#include "feedback/campaign.hpp"
#include "fleet/trial.hpp"

namespace acf::metrics {
class Registry;
}

namespace acf::feedback {

/// One arm of a feedback fleet: the loop configuration (seed and total
/// budget are overridden per trial from the TrialSpec) plus the fallback
/// budget when the TrialPlan does not impose one.
struct FeedbackArm {
  FeedbackConfig config;
  sim::Duration default_budget{std::chrono::seconds(600)};
};

/// Factory building one isolated feedback campaign per trial; the trial's
/// arm index selects from `arms` and its seed drives the whole loop.
///
/// When `registry` is non-null each world publishes the feedback loop's
/// counters (`feedback.*`, watermarks as `*_max`) and the coverage
/// tracker's totals (`fuzz.coverage.*`) at trial end — deterministic
/// per-trial sums, order-independent in aggregate.
///
/// When `corpus_dir` is non-empty it is created if missing; a file named
/// `seed.corpus` inside it (if present and valid) pre-populates every
/// trial's corpus, and each trial writes its final corpus to
/// `trial-<index>.corpus` — distinct names, so parallel trials never
/// collide.
fleet::WorldFactory feedback_world_factory(std::vector<FeedbackArm> arms,
                                           metrics::Registry* registry = nullptr,
                                           std::string corpus_dir = {});

}  // namespace acf::feedback
