#include "feedback/worlds.hpp"

#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include "metrics/metrics.hpp"

namespace acf::feedback {

namespace {

class FeedbackWorld final : public fleet::World {
 public:
  FeedbackWorld(const FeedbackArm& arm, const fleet::TrialSpec& spec,
                metrics::Registry* registry, const std::string& corpus_dir)
      : registry_(registry), corpus_dir_(corpus_dir), trial_index_(spec.trial_index) {
    FeedbackConfig config = arm.config;
    config.seed = spec.seed;
    config.max_total_sim =
        spec.sim_budget.count() > 0 ? spec.sim_budget : arm.default_budget;
    campaign_ = std::make_unique<FeedbackCampaign>(config);
    if (!corpus_dir_.empty()) {
      if (auto seeds = Corpus::load(corpus_dir_ + "/seed.corpus")) {
        campaign_->seed_corpus(*seeds);
      }
    }
  }

  fuzzer::CampaignResult run() override {
    fuzzer::CampaignResult result = campaign_->run();
    if (registry_ != nullptr) publish();
    if (!corpus_dir_.empty()) {
      campaign_->corpus().save(corpus_dir_ + "/trial-" + std::to_string(trial_index_) +
                               ".corpus");
    }
    return result;
  }

 private:
  void publish() const {
    metrics::Registry& reg = *registry_;
    const FeedbackStats& stats = campaign_->stats();
    reg.counter("feedback.executions").add(stats.executions);
    reg.counter("feedback.novel_inputs").add(stats.novel_inputs);
    reg.counter("feedback.trim_executions").add(stats.trim_executions);
    reg.counter("feedback.seeds_dropped").add(stats.seeds_dropped);
    reg.counter("feedback.frames_sent").add(stats.frames_sent);
    // Watermarks: per-trial corpora/maps do not sum meaningfully, so these
    // merge by max across trials and workers (`*_max` semantics).
    reg.counter("feedback.corpus.size_max").bump_to(campaign_->corpus().size());
    reg.counter("feedback.map.occupied_max").bump_to(campaign_->map().occupied());
    reg.counter("feedback.map.cells_max").bump_to(campaign_->map().cells());
    campaign_->coverage().publish_metrics(reg);
  }

  metrics::Registry* registry_ = nullptr;
  std::string corpus_dir_;
  std::size_t trial_index_ = 0;
  std::unique_ptr<FeedbackCampaign> campaign_;
};

}  // namespace

fleet::WorldFactory feedback_world_factory(std::vector<FeedbackArm> arms,
                                           metrics::Registry* registry,
                                           std::string corpus_dir) {
  if (arms.empty()) throw std::invalid_argument("feedback_world_factory: no arms");
  if (!corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(corpus_dir, ec);  // best-effort
  }
  auto shared = std::make_shared<const std::vector<FeedbackArm>>(std::move(arms));
  return [shared, registry, corpus_dir](const fleet::TrialSpec& spec)
             -> std::unique_ptr<fleet::World> {
    return std::make_unique<FeedbackWorld>(shared->at(spec.arm), spec, registry,
                                           corpus_dir);
  };
}

}  // namespace acf::feedback
