#include "feedback/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "fleet/remote/wire.hpp"

namespace acf::feedback {

using fleet::remote::ByteReader;
using fleet::remote::ByteWriter;

namespace {

constexpr std::uint8_t kSeedFlagHot = 0x01;
constexpr std::uint8_t kFrameFlagExtended = 0x01;

// Minimum encoded sizes, used to validate declared counts against the bytes
// actually present BEFORE any allocation (hostile counts fail closed).
constexpr std::size_t kMinSeedBytes = 1 + 8 + 8 + 4 + 4;  // flags + u64s + counts
constexpr std::size_t kMinFrameBytes = 4 + 1 + 1;         // id + flags + len

}  // namespace

bool Corpus::add(Seed seed) {
  if (seeds_.size() >= kMaxCorpusSeeds) return false;
  std::sort(seed.features.begin(), seed.features.end());
  seed.features.erase(std::unique(seed.features.begin(), seed.features.end()),
                      seed.features.end());
  seeds_.push_back(std::move(seed));
  return true;
}

std::uint64_t Corpus::energy(std::size_t i) const {
  // Hot seeds (ECU state / oracle domain) soak up most of the mutation
  // budget: they are the ones a few byte flips away from a finding.
  return seeds_.at(i).hot ? 32 : 1;
}

std::size_t Corpus::pick(util::Rng& rng) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < seeds_.size(); ++i) total += energy(i);
  std::uint64_t roll = rng.next_below(total);
  for (std::size_t i = 0; i < seeds_.size(); ++i) {
    const std::uint64_t e = energy(i);
    if (roll < e) return i;
    roll -= e;
  }
  return seeds_.size() - 1;  // unreachable; guards rounding mistakes
}

std::size_t Corpus::minimize() {
  if (seeds_.size() < 2) return 0;
  std::set<Feature> uncovered;
  for (const Seed& seed : seeds_) {
    uncovered.insert(seed.features.begin(), seed.features.end());
  }
  std::vector<bool> kept(seeds_.size(), false);
  while (!uncovered.empty()) {
    std::size_t best = seeds_.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < seeds_.size(); ++i) {
      if (kept[i]) continue;
      std::size_t gain = 0;
      for (const Feature f : seeds_[i].features) gain += uncovered.count(f);
      if (gain > best_gain) {  // ties resolve to the earliest seed
        best_gain = gain;
        best = i;
      }
    }
    if (best == seeds_.size()) break;  // remaining seeds add nothing
    kept[best] = true;
    for (const Feature f : seeds_[best].features) uncovered.erase(f);
  }
  std::vector<Seed> survivors;
  survivors.reserve(seeds_.size());
  for (std::size_t i = 0; i < seeds_.size(); ++i) {
    if (kept[i]) survivors.push_back(std::move(seeds_[i]));
  }
  const std::size_t dropped = seeds_.size() - survivors.size();
  seeds_ = std::move(survivors);
  return dropped;
}

std::size_t Corpus::distinct_features() const {
  std::set<Feature> all;
  for (const Seed& seed : seeds_) all.insert(seed.features.begin(), seed.features.end());
  return all.size();
}

std::vector<std::uint8_t> Corpus::encode() const {
  ByteWriter out;
  out.u32(kCorpusMagic);
  out.u32(kCorpusVersion);
  out.u32(static_cast<std::uint32_t>(seeds_.size()));
  for (const Seed& seed : seeds_) {
    out.u8(seed.hot ? kSeedFlagHot : 0);
    out.u64(seed.found_at_exec);
    out.u64(seed.exec_cost_ns);
    out.u32(static_cast<std::uint32_t>(seed.features.size()));
    for (const Feature f : seed.features) out.u64(f);
    out.u32(static_cast<std::uint32_t>(seed.frames.size()));
    for (const can::CanFrame& frame : seed.frames) {
      out.u32(frame.id());
      out.u8(frame.is_extended() ? kFrameFlagExtended : 0);
      out.u8(static_cast<std::uint8_t>(frame.length()));
      for (const std::uint8_t byte : frame.payload()) out.u8(byte);
    }
  }
  return out.take();
}

std::optional<Corpus> Corpus::decode(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  if (in.u32() != kCorpusMagic || in.u32() != kCorpusVersion || !in.ok()) {
    return std::nullopt;
  }
  const std::uint32_t seed_count = in.u32();
  if (!in.ok() || seed_count > kMaxCorpusSeeds ||
      static_cast<std::size_t>(seed_count) * kMinSeedBytes > in.remaining()) {
    return std::nullopt;
  }
  Corpus corpus;
  corpus.seeds_.reserve(seed_count);
  for (std::uint32_t s = 0; s < seed_count; ++s) {
    Seed seed;
    const std::uint8_t flags = in.u8();
    if (!in.ok() || (flags & ~kSeedFlagHot) != 0) return std::nullopt;
    seed.hot = (flags & kSeedFlagHot) != 0;
    seed.found_at_exec = in.u64();
    seed.exec_cost_ns = in.u64();

    const std::uint32_t feature_count = in.u32();
    if (!in.ok() || feature_count > kMaxSeedFeatures ||
        static_cast<std::size_t>(feature_count) * 8 > in.remaining()) {
      return std::nullopt;
    }
    seed.features.reserve(feature_count);
    for (std::uint32_t i = 0; i < feature_count; ++i) {
      const Feature f = in.u64();
      // Strictly increasing: the canonical order add() produces, so the
      // accepted set round-trips byte-identically.
      if (!seed.features.empty() && f <= seed.features.back()) return std::nullopt;
      seed.features.push_back(f);
    }

    const std::uint32_t frame_count = in.u32();
    if (!in.ok() || frame_count == 0 || frame_count > kMaxSeedFrames ||
        static_cast<std::size_t>(frame_count) * kMinFrameBytes > in.remaining()) {
      return std::nullopt;
    }
    seed.frames.reserve(frame_count);
    for (std::uint32_t i = 0; i < frame_count; ++i) {
      const std::uint32_t id = in.u32();
      const std::uint8_t fflags = in.u8();
      const std::uint8_t len = in.u8();
      if (!in.ok() || (fflags & ~kFrameFlagExtended) != 0 ||
          len > can::kMaxClassicPayload || len > in.remaining()) {
        return std::nullopt;
      }
      std::array<std::uint8_t, can::kMaxClassicPayload> payload{};
      for (std::uint8_t b = 0; b < len; ++b) payload[b] = in.u8();
      const auto format = (fflags & kFrameFlagExtended) != 0 ? can::IdFormat::kExtended
                                                             : can::IdFormat::kStandard;
      auto frame = can::CanFrame::data(id, std::span(payload.data(), len), format);
      if (!frame) return std::nullopt;
      // Canonical id check: a standard-format id above 11 bits was already
      // rejected by CanFrame::data; nothing else can alias.
      seed.frames.push_back(*frame);
    }
    corpus.seeds_.push_back(std::move(seed));
  }
  if (!in.done()) return std::nullopt;  // trailing garbage
  return corpus;
}

bool Corpus::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto bytes = encode();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<Corpus> Corpus::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return decode(bytes);
}

}  // namespace acf::feedback
